package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sync"
	"testing"
	"time"

	"hoyan/internal/gen"
	"hoyan/internal/netmodel"
)

// resultDigest reduces a simulation result to a collision-resistant digest
// over the global RIB rows, the representative flow paths, and the exact
// float bits of every link load — equality of digests is byte-identity of
// everything the verification layer reads.
func resultDigest(res *Result) string {
	h := sha256.New()
	var buf []byte
	for _, r := range res.Routes.GlobalRIB().Rows() {
		buf = r.AppendSignature(buf[:0])
		h.Write(buf)
	}
	if res.Traffic != nil {
		for _, fp := range res.Traffic.Traffic.Paths {
			fmt.Fprintf(h, "%v|%v\n", fp.Flow, fp.Path)
		}
		type kv struct {
			k netmodel.LinkID
			v float64
		}
		loads := make([]kv, 0, len(res.Traffic.Traffic.Load))
		for id, v := range res.Traffic.Traffic.Load {
			loads = append(loads, kv{id, v})
		}
		slices.SortFunc(loads, func(a, b kv) int {
			return stringsCompare(a.k.String(), b.k.String())
		})
		var fb [8]byte
		for _, l := range loads {
			fmt.Fprintf(h, "%s=", l.k.String())
			binary.LittleEndian.PutUint64(fb[:], math.Float64bits(l.v))
			h.Write(fb[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func stringsCompare(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// scenarioDeltas builds a deterministic mix of single-link, double-link, and
// node failures from the generated topology.
func scenarioDeltas(out *gen.Output, rng *rand.Rand) []Delta {
	links := out.Net.Topo.Links()
	var deltas []Delta
	step := len(links)/16 + 1
	for i := 0; i < len(links); i += step {
		deltas = append(deltas, Delta{LinksDown: []netmodel.LinkID{links[i].ID()}})
	}
	for i := 0; i < 8; i++ {
		a, b := rng.Intn(len(links)), rng.Intn(len(links))
		if a == b {
			continue
		}
		deltas = append(deltas, Delta{LinksDown: []netmodel.LinkID{links[a].ID(), links[b].ID()}})
	}
	nodes := out.Net.Topo.Nodes()
	for i := 0; i < 4; i++ {
		deltas = append(deltas, Delta{NodesDown: []string{nodes[rng.Intn(len(nodes))].Name}})
	}
	return deltas
}

// TestConcurrentForksByteIdentical is the service's steady state: many
// goroutines forking off one shared BaseRun at once, in a randomized
// interleaving, must each produce exactly the bytes a sequential fork of the
// same delta produces. Run under -race this also proves the base capture is
// read-only across forks.
func TestConcurrentForksByteIdentical(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	eng := NewEngine(out.Net, Options{})
	eng.BaseRun(out.Inputs, out.Flows)

	rng := rand.New(rand.NewSource(42))
	deltas := scenarioDeltas(out, rng)

	want := make([]string, len(deltas))
	for i, d := range deltas {
		scratch := out.Net.Clone()
		applyDelta(scratch, d)
		res, _ := eng.Fork(scratch, d)
		want[i] = resultDigest(res)
	}

	order := rng.Perm(len(deltas))
	got := make([]string, len(deltas))
	var wg sync.WaitGroup
	for _, idx := range order {
		jitter := time.Duration(rng.Intn(200)) * time.Microsecond
		wg.Add(1)
		go func(idx int, jitter time.Duration) {
			defer wg.Done()
			time.Sleep(jitter)
			scratch := out.Net.Clone()
			applyDelta(scratch, deltas[idx])
			res, _ := eng.Fork(scratch, deltas[idx])
			got[idx] = resultDigest(res)
		}(idx, jitter)
	}
	wg.Wait()

	for i := range deltas {
		if got[i] != want[i] {
			t.Errorf("delta %d (%+v): concurrent fork digest %s != sequential %s",
				i, deltas[i], got[i], want[i])
		}
	}
}

// TestConcurrentForksMixedCancellation interleaves live and pre-cancelled
// forks off one engine: cancelled ones must error without perturbing the
// byte-identity of their live neighbors.
func TestConcurrentForksMixedCancellation(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	eng := NewEngine(out.Net, Options{})
	eng.BaseRun(out.Inputs, out.Flows)

	rng := rand.New(rand.NewSource(7))
	deltas := scenarioDeltas(out, rng)

	want := make([]string, len(deltas))
	for i, d := range deltas {
		scratch := out.Net.Clone()
		applyDelta(scratch, d)
		res, _ := eng.Fork(scratch, d)
		want[i] = resultDigest(res)
	}

	cancelled := make([]bool, len(deltas))
	for i := range cancelled {
		cancelled[i] = rng.Intn(2) == 0
	}
	deadCtx, cancel := context.WithCancel(context.Background())
	cancel()

	errsCh := make(chan string, len(deltas))
	var wg sync.WaitGroup
	for i := range deltas {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scratch := out.Net.Clone()
			applyDelta(scratch, deltas[i])
			ctx := context.Background()
			if cancelled[i] {
				ctx = deadCtx
			}
			res, _, err := eng.ForkCtx(ctx, scratch, deltas[i])
			if cancelled[i] {
				if !errors.Is(err, context.Canceled) || res != nil {
					errsCh <- fmt.Sprintf("delta %d: cancelled fork res=%v err=%v", i, res, err)
				}
				return
			}
			if err != nil {
				errsCh <- fmt.Sprintf("delta %d: live fork err=%v", i, err)
				return
			}
			if got := resultDigest(res); got != want[i] {
				errsCh <- fmt.Sprintf("delta %d: live fork digest %s != sequential %s", i, got, want[i])
			}
		}(i)
	}
	wg.Wait()
	close(errsCh)
	for msg := range errsCh {
		t.Error(msg)
	}
}
