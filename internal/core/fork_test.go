package core

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"

	"hoyan/internal/config"
	"hoyan/internal/gen"
	"hoyan/internal/netmodel"
)

// applyDelta toggles a network to reflect a delta (the callers of Fork do
// this themselves; tests mirror it).
func applyDelta(net *config.Network, d Delta) {
	for _, id := range d.LinksDown {
		net.Topo.SetLinkUp(id, false)
	}
	for _, id := range d.LinksUp {
		net.Topo.SetLinkUp(id, true)
	}
	for _, n := range d.NodesDown {
		net.Topo.SetNodeUp(n, false)
	}
	for _, n := range d.NodesUp {
		net.Topo.SetNodeUp(n, true)
	}
}

// assertIdentical fails unless the incremental and reference results agree
// byte-for-byte on RIBs, representative paths, and link loads.
func assertIdentical(t *testing.T, label string, inc, ref *Result) {
	t.Helper()
	incRIB, refRIB := inc.Routes.GlobalRIB(), ref.Routes.GlobalRIB()
	if !incRIB.Equal(refRIB) {
		onlyInc, onlyRef := incRIB.Diff(refRIB)
		t.Fatalf("%s: RIB mismatch: %d rows only incremental (e.g. %v), %d rows only reference (e.g. %v)",
			label, len(onlyInc), first(onlyInc), len(onlyRef), first(onlyRef))
	}
	if (inc.Traffic == nil) != (ref.Traffic == nil) {
		t.Fatalf("%s: traffic presence mismatch", label)
	}
	if inc.Traffic == nil {
		return
	}
	if !reflect.DeepEqual(inc.Traffic.Traffic.Paths, ref.Traffic.Traffic.Paths) {
		t.Fatalf("%s: representative paths differ", label)
	}
	if !reflect.DeepEqual(inc.Traffic.Traffic.Load, ref.Traffic.Traffic.Load) {
		t.Fatalf("%s: link loads differ", label)
	}
}

func first(rs []netmodel.Route) any {
	if len(rs) == 0 {
		return "-"
	}
	return rs[0]
}

// checkFork runs one delta both ways — incremental fork and from-scratch
// reference — and asserts byte-identity.
func checkFork(t *testing.T, eng *Engine, base *config.Network, inputs []netmodel.Route, flows []netmodel.Flow, d Delta, label string) ForkStats {
	t.Helper()
	scratch := base.Clone()
	applyDelta(scratch, d)
	inc, stats := eng.Fork(scratch, d)
	ref := NewEngine(scratch, eng.opts).Run(applyInputDelta(inputs, d), flows)
	assertIdentical(t, label, inc, ref)
	return stats
}

func TestForkLinkFailureIdentity(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	eng := NewEngine(out.Net, Options{})
	eng.BaseRun(out.Inputs, out.Flows)
	links := out.Net.Topo.Links()
	step := len(links)/12 + 1
	for i := 0; i < len(links); i += step {
		id := links[i].ID()
		stats := checkFork(t, eng, out.Net, out.Inputs, out.Flows,
			Delta{LinksDown: []netmodel.LinkID{id}}, "link down "+id.String())
		if stats.Full {
			t.Errorf("link %s: fork fell back to full simulation", id)
		}
	}
}

func TestForkNodeFailureIdentity(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	eng := NewEngine(out.Net, Options{})
	eng.BaseRun(out.Inputs, out.Flows)
	names := out.Net.Topo.NodeNames()
	step := len(names)/8 + 1
	for i := 0; i < len(names); i += step {
		checkFork(t, eng, out.Net, out.Inputs, out.Flows,
			Delta{NodesDown: []string{names[i]}}, "node down "+names[i])
	}
}

func TestForkMultiElementIdentity(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	eng := NewEngine(out.Net, Options{})
	eng.BaseRun(out.Inputs, out.Flows)
	links := out.Net.Topo.Links()
	names := out.Net.Topo.NodeNames()
	d := Delta{
		LinksDown: []netmodel.LinkID{links[0].ID(), links[len(links)/2].ID()},
		NodesDown: []string{names[len(names)/3]},
	}
	checkFork(t, eng, out.Net, out.Inputs, out.Flows, d, "multi-element")
}

func TestForkLinkRestoreIdentity(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	// Base network with two links already down; the fork restores one.
	links := out.Net.Topo.Links()
	downA, downB := links[1].ID(), links[len(links)-2].ID()
	out.Net.Topo.SetLinkUp(downA, false)
	out.Net.Topo.SetLinkUp(downB, false)
	eng := NewEngine(out.Net, Options{})
	eng.BaseRun(out.Inputs, out.Flows)
	checkFork(t, eng, out.Net, out.Inputs, out.Flows,
		Delta{LinksUp: []netmodel.LinkID{downA}}, "link restore")
	checkFork(t, eng, out.Net, out.Inputs, out.Flows,
		Delta{LinksUp: []netmodel.LinkID{downB}, LinksDown: []netmodel.LinkID{links[0].ID()}}, "restore+fail")
}

func TestForkInputDeltaIdentity(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	eng := NewEngine(out.Net, Options{})
	eng.BaseRun(out.Inputs, out.Flows)

	// Drop the first input and inject a new prefix at the same device.
	add := out.Inputs[0]
	add.Prefix = netip.MustParsePrefix("203.0.113.0/24")
	d := Delta{
		DropInputs: []netmodel.Route{out.Inputs[0]},
		AddInputs:  []netmodel.Route{add},
	}
	checkFork(t, eng, out.Net, out.Inputs, out.Flows, d, "input delta")

	// Combined topology + input delta.
	links := out.Net.Topo.Links()
	d.LinksDown = []netmodel.LinkID{links[3].ID()}
	checkFork(t, eng, out.Net, out.Inputs, out.Flows, d, "input+link delta")
}

func TestForkNodeUpFallsBackToFull(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	names := out.Net.Topo.NodeNames()
	out.Net.Topo.SetNodeUp(names[0], false)
	eng := NewEngine(out.Net, Options{})
	eng.BaseRun(out.Inputs, out.Flows)
	stats := checkFork(t, eng, out.Net, out.Inputs, out.Flows,
		Delta{NodesUp: []string{names[0]}}, "node up")
	if !stats.Full {
		t.Error("restoring a node must take the full-simulation path")
	}
}

func TestForkDisableIncremental(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	eng := NewEngine(out.Net, Options{DisableIncremental: true})
	eng.BaseRun(out.Inputs, out.Flows)
	id := out.Net.Topo.Links()[0].ID()
	stats := checkFork(t, eng, out.Net, out.Inputs, out.Flows,
		Delta{LinksDown: []netmodel.LinkID{id}}, "disabled")
	if !stats.Full {
		t.Error("DisableIncremental must force the from-scratch path")
	}
}

// TestForkRandomizedDeltas throws seeded random deltas (multiple links and
// nodes at once, with and without input changes) at the incremental engine
// and checks byte-identity against the reference on every one.
func TestForkRandomizedDeltas(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	eng := NewEngine(out.Net, Options{})
	eng.BaseRun(out.Inputs, out.Flows)
	links := out.Net.Topo.Links()
	names := out.Net.Topo.NodeNames()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		var d Delta
		nLinks := 1 + rng.Intn(3)
		for j := 0; j < nLinks; j++ {
			d.LinksDown = append(d.LinksDown, links[rng.Intn(len(links))].ID())
		}
		if rng.Intn(3) == 0 {
			d.NodesDown = append(d.NodesDown, names[rng.Intn(len(names))])
		}
		if rng.Intn(3) == 0 {
			d.DropInputs = append(d.DropInputs, out.Inputs[rng.Intn(len(out.Inputs))])
		}
		checkFork(t, eng, out.Net, out.Inputs, out.Flows, d, "random trial")
	}
}

// TestForkECsDisabledIdentity exercises the fork with both EC reductions off
// (the expansion-free paths).
func TestForkECsDisabledIdentity(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	opts := Options{DisableRouteECs: true, DisableFlowECs: true}
	eng := NewEngine(out.Net, opts)
	eng.BaseRun(out.Inputs, out.Flows)
	links := out.Net.Topo.Links()
	checkFork(t, eng, out.Net, out.Inputs, out.Flows,
		Delta{LinksDown: []netmodel.LinkID{links[2].ID()}}, "ECs off")
}
