package core

import (
	"context"
	"net/netip"
	"slices"

	"hoyan/internal/bgp"
	"hoyan/internal/config"
	"hoyan/internal/ec"
	"hoyan/internal/isis"
	"hoyan/internal/netmodel"
	"hoyan/internal/traffic"
)

// Delta describes a what-if scenario relative to the engine's base snapshot:
// link and node up/down flips plus input-route changes. Configuration changes
// are out of scope — callers with config deltas build a fresh engine.
type Delta struct {
	LinksDown []netmodel.LinkID
	LinksUp   []netmodel.LinkID
	NodesDown []string
	NodesUp   []string

	// AddInputs / DropInputs adjust the input route set (DropInputs matches
	// by route key, exactly like change.Plan.ApplyInputs).
	AddInputs  []netmodel.Route
	DropInputs []netmodel.Route
}

func (d Delta) inputsChanged() bool {
	return len(d.AddInputs) > 0 || len(d.DropInputs) > 0
}

// links returns every link whose Up state the delta flips.
func (d Delta) links() []netmodel.LinkID {
	out := make([]netmodel.LinkID, 0, len(d.LinksDown)+len(d.LinksUp))
	out = append(out, d.LinksDown...)
	out = append(out, d.LinksUp...)
	return out
}

// ForkStats reports how much work an incremental Fork avoided.
type ForkStats struct {
	// Full is set when the fork fell back to a from-scratch simulation
	// (DisableIncremental, no BaseRun capture, or nodes coming up).
	Full bool

	SPFSources int // up sources in the scenario topology
	SPFReused  int // sources whose base SPF result was reused

	BGPTablesTotal int // tables in the base converged state
	BGPTablesDirty int // tables seeded dirty in the warm restart
	BGPRounds      int // fixpoint rounds the warm restart ran

	FlowsTotal  int // representative flows forwarded
	FlowsReused int // flows whose base path/load was reused
}

// baseCapture is everything BaseRun saves so Fork can warm-start: the inputs
// and flows, the EC partitions, the converged BGP state (pre-expansion), the
// base global-RIB prefix set, and the traced traffic result.
type baseCapture struct {
	inputs []netmodel.Route
	flows  []netmodel.Flow

	routeECs *ec.RouteECs     // nil with route ECs off
	reps     []netmodel.Route // what BGP actually simulated

	bgpState *bgp.State

	// routes is the base run's result: its expanded tables are shared into
	// forks verbatim for unchanged devices, and its global RIB is the merge
	// base for fork global RIBs.
	routes *RouteResult

	// basePrefixCount maps each prefix of the base global RIB to the number
	// of (device, vrf) tables holding it, so forks can decide whether their
	// distinct-prefix set matches the base from per-table diffs alone.
	basePrefixCount map[netip.Prefix]int
	flowECs         *ec.FlowECs     // nil with flow ECs off
	repFlows        []netmodel.Flow // what the forwarder actually simulated
	traffic         *traffic.Result
	traces          []traffic.Trace
}

// BaseRun executes the full pipeline like Run and captures the converged
// state so subsequent Fork calls can re-simulate incrementally. The returned
// result is byte-identical to Run's.
func (e *Engine) BaseRun(inputs []netmodel.Route, flows []netmodel.Flow) *Result {
	res, _ := e.baseRun(nil, inputs, flows)
	return res
}

// BaseRunCtx is BaseRun with cancellation. On a cancelled context it returns
// ctx's error and leaves the engine without a base capture (Fork still
// panics), so a partial run can never seed warm restarts.
func (e *Engine) BaseRunCtx(ctx context.Context, inputs []netmodel.Route, flows []netmodel.Flow) (*Result, error) {
	return e.baseRun(ctx, inputs, flows)
}

func (e *Engine) baseRun(ctx context.Context, inputs []netmodel.Route, flows []netmodel.Flow) (*Result, error) {
	bc := &baseCapture{inputs: inputs, flows: flows}
	e.base = bc
	if e.opts.DisableIncremental {
		res, err := e.runCtx(ctx, inputs, flows)
		if err != nil {
			e.base = nil
			return nil, err
		}
		bc.routes = res.Routes
		if res.Traffic != nil {
			bc.traffic = res.Traffic.Traffic
			bc.flowECs = res.Traffic.ECStats
		}
		return res, nil
	}

	bgpOpts := bgp.Options{
		Profiles:          e.opts.Profiles,
		MaxRounds:         e.opts.MaxRounds,
		FlawedASPathRegex: e.opts.FlawedASPathRegex,
		UseTEMetric:       e.opts.UseTEMetric,
		Legacy:            e.opts.DisableIndex,
		Parallelism:       e.opts.Parallelism,
		Ctx:               ctx,
	}
	reps := inputs
	if !e.opts.DisableRouteECs {
		bc.routeECs = ec.ComputeRouteECs(e.net, e.opts.Profiles, inputs, e.opts.Parallelism)
		reps = bc.routeECs.Representatives()
	}
	bc.reps = reps
	bres, st := bgp.SimulateWithState(e.net, e.igp, reps, bgpOpts)
	if err := ctxErr(ctx); err != nil {
		e.base = nil
		return nil, err
	}
	bc.bgpState = st
	if bc.routeECs != nil {
		for _, t := range bres.Tables() {
			e.expandRIB(bc.routeECs, bres.RIB(t.Device, t.VRF))
		}
	}
	routes := &RouteResult{BGP: bres, ECStats: bc.routeECs}
	bc.routes = routes
	// Materialize the global RIB now: forks (possibly concurrent) merge
	// against it.
	routes.GlobalRIB()

	var tr *TrafficResult
	if len(flows) > 0 {
		bc.basePrefixCount = make(map[netip.Prefix]int)
		for _, t := range bres.Tables() {
			for _, p := range bres.RIB(t.Device, t.VRF).Prefixes() {
				bc.basePrefixCount[p]++
			}
		}
		repFlows := flows
		if !e.opts.DisableFlowECs {
			bc.flowECs = ec.ComputeFlowECs(e.net, ec.RIBPrefixes(routes.GlobalRIB().Rows()), flows, e.opts.Parallelism)
			repFlows = bc.flowECs.Representatives()
		}
		bc.repFlows = repFlows
		fw := e.forwarderCtx(ctx, e.net, e.igp, routes)
		trr, traces := fw.SimulateTraced(repFlows)
		if err := ctxErr(ctx); err != nil {
			e.base = nil
			return nil, err
		}
		bc.traffic, bc.traces = trr, traces
		tr = &TrafficResult{Traffic: trr, ECStats: bc.flowECs}
	}
	return &Result{Routes: routes, Traffic: tr}, nil
}

// HasBase reports whether a completed BaseRun capture is available.
func (e *Engine) HasBase() bool { return e.base != nil }

// BaseResult reassembles the result of the last completed BaseRun from the
// capture (nil before any BaseRun). Long-lived services hold the engine and
// re-read the base through this instead of re-running it.
func (e *Engine) BaseResult() *Result {
	if e.base == nil || e.base.routes == nil {
		return nil
	}
	res := &Result{Routes: e.base.routes}
	if e.base.traffic != nil {
		res.Traffic = &TrafficResult{Traffic: e.base.traffic, ECStats: e.base.flowECs}
	}
	return res
}

// BaseInputs returns the input routes the last BaseRun captured.
func (e *Engine) BaseInputs() []netmodel.Route {
	if e.base == nil {
		return nil
	}
	return e.base.inputs
}

// BaseFlows returns the flows the last BaseRun captured.
func (e *Engine) BaseFlows() []netmodel.Flow {
	if e.base == nil {
		return nil
	}
	return e.base.flows
}

// Fork simulates a what-if scenario derived from the base run. net must be
// the engine's network already mutated to reflect d (toggled links/nodes) —
// it may be the engine's own network temporarily toggled, or a clone.
//
// With incrementality enabled (and BaseRun called first), the fork recomputes
// SPF only for touched sources, warm-starts the BGP fixpoint from the base
// converged state, and re-forwards only the flows whose traced devices
// changed. The result is byte-identical to building a fresh engine on net and
// running it on the delta-adjusted inputs — Options.DisableIncremental takes
// exactly that reference path.
func (e *Engine) Fork(net *config.Network, d Delta) (*Result, ForkStats) {
	res, stats, _ := e.forkCtx(nil, net, d, 0)
	return res, stats
}

// ForkCtx is Fork with cancellation: every stage (SPF recompute, warm BGP
// fixpoint, flow re-forwarding) polls ctx and the call returns ctx's error
// (with a nil result) as soon as cancellation is observed, so a
// deadline-exceeded what-if query stops burning CPU promptly. The base
// capture is never mutated by an abandoned fork.
func (e *Engine) ForkCtx(ctx context.Context, net *config.Network, d Delta) (*Result, ForkStats, error) {
	return e.forkCtx(ctx, net, d, 0)
}

// ForkCtxN is ForkCtx with a per-fork parallelism cap: every stage of this
// fork (SPF recompute, warm BGP fixpoint, EC recomputation, flow
// re-forwarding, and the from-scratch fallback) runs with at most
// parallelism workers instead of the engine-wide setting. Zero or negative
// keeps the engine's own Options.Parallelism. serve uses this to cap each
// tenant query at a fraction of the machine while the base engine keeps its
// full fan-out. Results are byte-identical at every setting.
func (e *Engine) ForkCtxN(ctx context.Context, net *config.Network, d Delta, parallelism int) (*Result, ForkStats, error) {
	return e.forkCtx(ctx, net, d, parallelism)
}

func (e *Engine) forkCtx(ctx context.Context, net *config.Network, d Delta, parallelism int) (*Result, ForkStats, error) {
	if e.base == nil {
		panic("core: Engine.Fork requires a prior BaseRun")
	}
	if parallelism <= 0 {
		parallelism = e.opts.Parallelism
	}
	var stats ForkStats
	inputs := applyInputDelta(e.base.inputs, d)
	flows := e.base.flows

	// Nodes coming up invalidate every per-source SPF bound and (transitively)
	// most BGP state; it is not a hot path, so take the reference route.
	if e.opts.DisableIncremental || e.base.bgpState == nil || len(d.NodesUp) > 0 {
		stats.Full = true
		opts := e.opts
		opts.Parallelism = parallelism
		res, err := newEngineCtx(ctx, net, opts).runCtx(ctx, inputs, flows)
		if err != nil {
			return nil, stats, err
		}
		return res, stats, nil
	}

	igp, touched, spfStats := isis.Recompute(net.Topo, e.igp, isis.Delta{
		Links:     d.links(),
		NodesDown: d.NodesDown,
		NodesUp:   d.NodesUp,
	}, isis.Options{UseTEMetric: e.opts.UseTEMetric, Parallelism: parallelism, Legacy: e.opts.DisableIndex, Ctx: ctx})
	stats.SPFSources = spfStats.Sources
	stats.SPFReused = spfStats.Reused
	if err := ctxErr(ctx); err != nil {
		return nil, stats, err
	}

	// Per-destination IGP diffs for each recomputed source: distance changes
	// drive BGP re-decisions, first-hop changes drive flow invalidation. Most
	// touched sources change only a handful of destinations, so both consumers
	// get far smaller dirty sets than "everything at a touched source".
	distChanged := make(map[string]map[string]bool)
	hopsChanged := make(map[string]map[string]bool)
	for src, t := range touched {
		if !t {
			continue
		}
		dc, hc := isis.Diff(e.igp, igp, src)
		if len(dc) > 0 {
			distChanged[src] = dc
		}
		if len(hc) > 0 {
			hopsChanged[src] = hc
		}
	}

	// The route-EC partition depends only on configurations and inputs, so it
	// survives any pure topology delta.
	reps := e.base.reps
	routeECs := e.base.routeECs
	if d.inputsChanged() {
		if e.opts.DisableRouteECs {
			reps = inputs
		} else {
			routeECs = ec.ComputeRouteECs(net, e.opts.Profiles, inputs, parallelism)
			reps = routeECs.Representatives()
		}
	}

	bres, rstats := e.base.bgpState.ResimulateCtx(ctx, net, igp, reps, bgp.Delta{
		DistChanged:  distChanged,
		ChangedLinks: d.links(),
		NodesDown:    d.NodesDown,
	}, parallelism)
	stats.BGPTablesTotal = rstats.TablesTotal
	stats.BGPTablesDirty = rstats.TablesDirty
	stats.BGPRounds = rstats.Rounds
	if err := ctxErr(ctx); err != nil {
		return nil, stats, err
	}
	// With an unchanged input set the EC partition — and therefore the
	// expansion of an unchanged table — matches the base run exactly, so
	// unchanged devices share the base's already-expanded tables and only
	// changed ones expand. The fork's global RIB then comes from a sorted
	// merge against the base instead of a full rebuild.
	share := !d.inputsChanged() && e.base.routes != nil
	for _, t := range bres.Tables() {
		if share && !rstats.ChangedDevices[t.Device] {
			bres.SetRIB(t.Device, t.VRF, e.base.routes.BGP.RIB(t.Device, t.VRF))
			continue
		}
		if routeECs == nil {
			continue
		}
		rt := bres.RIB(t.Device, t.VRF)
		if !rstats.ChangedDevices[t.Device] {
			// The warm restart's unchanged tables may alias the captured base
			// state (copy-on-write); clone before expanding in place.
			rt = rt.ShallowClone()
			bres.SetRIB(t.Device, t.VRF, rt)
		}
		e.expandRIB(routeECs, rt)
	}
	routes := &RouteResult{BGP: bres, ECStats: routeECs}
	// ribDiff narrows flow invalidation from "visited a changed device" to
	// "a changed prefix at a visited device covers the flow's destination":
	// per changed device, the prefixes whose expanded rows differ from base.
	// countDelta tracks per-prefix table-count changes so the flow-EC
	// partition check below needs no materialized global RIB — the global RIB
	// itself is built lazily, only for intents that actually read it.
	var ribDiff map[string][]netip.Prefix
	var countDelta map[netip.Prefix]int
	if share {
		routes.globalFn = func() *netmodel.GlobalRIB {
			return e.mergedGlobalRIB(bres, rstats.ChangedDevices)
		}
		ribDiff = make(map[string][]netip.Prefix, len(rstats.ChangedDevices))
		countDelta = make(map[netip.Prefix]int)
		for _, t := range bres.Tables() {
			if !rstats.ChangedDevices[t.Device] {
				continue
			}
			baseRIB := e.base.routes.BGP.RIB(t.Device, t.VRF)
			diff, added, removed := bres.RIB(t.Device, t.VRF).DiffPrefixes(baseRIB)
			if len(diff) > 0 {
				ribDiff[t.Device] = append(ribDiff[t.Device], diff...)
			}
			for _, p := range added {
				countDelta[p]++
			}
			for _, p := range removed {
				countDelta[p]--
			}
		}
		// Purged devices' tables are gone from the fork result entirely, so
		// the loop above never sees them; retire their prefixes here.
		if len(d.NodesDown) > 0 {
			downSet := make(map[string]bool, len(d.NodesDown))
			for _, n := range d.NodesDown {
				downSet[n] = true
			}
			for _, t := range e.base.routes.BGP.Tables() {
				if !downSet[t.Device] {
					continue
				}
				for _, p := range e.base.routes.BGP.RIB(t.Device, t.VRF).Prefixes() {
					countDelta[p]--
				}
			}
		}
	}

	var tr *TrafficResult
	if len(flows) > 0 {
		// The flow-EC partition is a function of configurations, flows, and
		// the distinct-prefix set of the global RIB; reuse it when that set is
		// unchanged (and with it, the traced base forwarding).
		var samePartition bool
		if countDelta != nil {
			samePartition = partitionUnchanged(e.base.basePrefixCount, countDelta)
		} else {
			samePartition = prefixSetMatchesCount(prefixSet(routes.GlobalRIB().Rows()), e.base.basePrefixCount)
		}
		flowECs := e.base.flowECs
		repFlows := e.base.repFlows
		if !samePartition && !e.opts.DisableFlowECs {
			rows := routes.GlobalRIB().Rows()
			flowECs = ec.ComputeFlowECs(net, ec.RIBPrefixes(rows), flows, parallelism)
			repFlows = flowECs.Representatives()
		}
		fw := e.forwarderCtxN(ctx, net, igp, routes, parallelism)
		var trr *traffic.Result
		if samePartition && e.base.traffic != nil {
			// With a per-prefix RIB diff available, a changed BGP table alone
			// no longer condemns every flow through its device; only the
			// structural delta (flipped links, downed nodes) does.
			var changed map[string]bool
			if ribDiff != nil {
				changed = structuralDeviceSet(d)
			} else {
				changed = changedDeviceSet(rstats.ChangedDevices, d)
			}
			var reused int
			trr, _, reused = fw.Resimulate(repFlows, e.base.traffic, e.base.traces, changed, hopsChanged, ribDiff)
			stats.FlowsReused = reused
		} else {
			trr = fw.Simulate(repFlows)
		}
		stats.FlowsTotal = len(repFlows)
		tr = &TrafficResult{Traffic: trr, ECStats: flowECs}
	}
	if err := ctxErr(ctx); err != nil {
		return nil, stats, err
	}
	return &Result{Routes: routes, Traffic: tr}, stats, nil
}

// mergedGlobalRIB builds a fork's global RIB by merging the changed tables'
// rows into the base global RIB. CompareRoutes orders by device first, so
// rows group per device and the merge reproduces a full re-sort exactly:
// every device's block is taken wholesale from either the base rows or the
// freshly sorted changed rows.
func (e *Engine) mergedGlobalRIB(bres *bgp.Result, changed map[string]bool) *netmodel.GlobalRIB {
	byDev := make(map[string][]netmodel.Route, len(changed))
	total := 0
	for _, t := range bres.Tables() {
		if changed[t.Device] {
			rows := bres.RIB(t.Device, t.VRF).All()
			byDev[t.Device] = append(byDev[t.Device], rows...)
			total += len(rows)
		}
	}
	names := make([]string, 0, len(changed))
	for dev := range changed {
		names = append(names, dev)
	}
	slices.Sort(names)
	for _, dev := range names {
		if rows := byDev[dev]; len(rows) > 0 {
			slices.SortFunc(rows, netmodel.CompareRoutes)
		}
	}
	baseRows := e.base.routes.GlobalRIB().Rows()
	out := make([]netmodel.Route, 0, len(baseRows)+total)
	ci := 0
	i := 0
	for i < len(baseRows) {
		dev := baseRows[i].Device
		j := i + 1
		for j < len(baseRows) && baseRows[j].Device == dev {
			j++
		}
		if changed[dev] {
			// This device's block is replaced by its fork rows (emitted below
			// in name order; a purged device simply contributes nothing).
			i = j
			continue
		}
		for ci < len(names) && names[ci] < dev {
			out = append(out, byDev[names[ci]]...)
			ci++
		}
		out = append(out, baseRows[i:j]...)
		i = j
	}
	for ; ci < len(names); ci++ {
		out = append(out, byDev[names[ci]]...)
	}
	return netmodel.NewGlobalRIBFromSorted(out)
}

// forwarderCtx builds a traffic forwarder over an arbitrary snapshot/IGP
// pair, threading the cancellation context into its per-flow loops.
func (e *Engine) forwarderCtx(ctx context.Context, net *config.Network, igp *isis.Result, ribs traffic.RIBSource) *traffic.Forwarder {
	return e.forwarderCtxN(ctx, net, igp, ribs, e.opts.Parallelism)
}

// forwarderCtxN is forwarderCtx with an explicit parallelism bound (forks
// capped below the engine-wide setting).
func (e *Engine) forwarderCtxN(ctx context.Context, net *config.Network, igp *isis.Result, ribs traffic.RIBSource, parallelism int) *traffic.Forwarder {
	return traffic.NewForwarder(net, igp, ribs, traffic.Options{
		Profiles:    e.opts.Profiles,
		IgnoreACLs:  e.opts.IgnoreACLs,
		IgnorePBR:   e.opts.IgnorePBR,
		Parallelism: parallelism,
		Legacy:      e.opts.DisableIndex,
		Ctx:         ctx,
	})
}

// expandRIB applies the route-EC expansion through the engine's index mode.
func (e *Engine) expandRIB(ecs *ec.RouteECs, rib *netmodel.RIB) {
	if e.opts.DisableIndex {
		ecs.ExpandRIBLegacy(rib)
	} else {
		ecs.ExpandRIB(rib)
	}
}

// changedDeviceSet is the set of devices whose forwarding-relevant state
// differs from base in ways a flow trace's device set captures: changed BGP
// tables and the endpoints of every flipped element. Changed IGP first hops
// are matched per (device, target) against the trace's recorded IGP queries
// instead — see traffic.Trace.Touches.
func changedDeviceSet(bgpChanged map[string]bool, d Delta) map[string]bool {
	out := structuralDeviceSet(d)
	for dev := range bgpChanged {
		out[dev] = true
	}
	return out
}

// structuralDeviceSet is the devices whose adjacency or existence the delta
// touches: endpoints of flipped links plus flipped nodes. Forwarding consults
// their link state and local delivery directly, outside RIB and IGP lookups.
func structuralDeviceSet(d Delta) map[string]bool {
	out := make(map[string]bool, 2*len(d.LinksDown)+2*len(d.LinksUp))
	for _, id := range d.links() {
		out[id.A] = true
		out[id.B] = true
	}
	for _, n := range d.NodesDown {
		out[n] = true
	}
	for _, n := range d.NodesUp {
		out[n] = true
	}
	return out
}

// applyInputDelta mirrors change.Plan.ApplyInputs: drops by route key, then
// appends.
func applyInputDelta(inputs []netmodel.Route, d Delta) []netmodel.Route {
	if !d.inputsChanged() {
		return inputs
	}
	drop := make(map[netmodel.RouteKey]bool, len(d.DropInputs))
	for _, r := range d.DropInputs {
		drop[r.Key()] = true
	}
	var out []netmodel.Route
	for _, r := range inputs {
		if !drop[r.Key()] {
			out = append(out, r)
		}
	}
	return append(out, d.AddInputs...)
}

func prefixSet(rows []netmodel.Route) map[netip.Prefix]bool {
	out := make(map[netip.Prefix]bool)
	for _, r := range rows {
		out[r.Prefix] = true
	}
	return out
}

// partitionUnchanged reports whether applying the per-prefix table-count
// delta to the base counts leaves the distinct-prefix set unchanged (no
// prefix's count crosses zero in either direction).
func partitionUnchanged(baseCount, delta map[netip.Prefix]int) bool {
	for p, dlt := range delta {
		if dlt == 0 {
			continue
		}
		n := baseCount[p]
		if (n+dlt > 0) != (n > 0) {
			return false
		}
	}
	return true
}

func prefixSetMatchesCount(set map[netip.Prefix]bool, count map[netip.Prefix]int) bool {
	if len(set) != len(count) {
		return false
	}
	for p := range set {
		if count[p] == 0 {
			return false
		}
	}
	return true
}
