package core

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"

	"hoyan/internal/config"
	"hoyan/internal/netmodel"
)

// Snapshot is the wire form of a network model: every device's configuration
// in its own vendor dialect plus the monitored topology. The master uploads
// one snapshot per simulation task to the object store; workers restore it.
type Snapshot struct {
	Configs map[string]string `json:"configs"`
	Nodes   []SnapshotNode    `json:"nodes"`
	Links   []netmodel.Link   `json:"links"`
}

// SnapshotNode is the wire form of a topology node.
type SnapshotNode struct {
	Name     string     `json:"name"`
	Loopback netip.Addr `json:"loopback"`
	Up       bool       `json:"up"`
}

// TakeSnapshot serializes a network model.
func TakeSnapshot(net *config.Network) *Snapshot {
	s := &Snapshot{Configs: make(map[string]string, len(net.Devices))}
	for name, d := range net.Devices {
		s.Configs[name] = config.Serialize(d)
	}
	for _, n := range net.Topo.Nodes() {
		s.Nodes = append(s.Nodes, SnapshotNode{Name: n.Name, Loopback: n.Loopback, Up: n.Up})
	}
	for _, l := range net.Topo.Links() {
		s.Links = append(s.Links, *l)
	}
	return s
}

// Restore parses the snapshot back into a network model, sequentially.
func (s *Snapshot) Restore() (*config.Network, error) {
	return s.RestoreParallel(1)
}

// RestoreParallel restores the snapshot parsing device configurations on a
// worker pool (par conventions: 0 = GOMAXPROCS, 1 = sequential). The restored
// model is identical at any parallelism.
func (s *Snapshot) RestoreParallel(parallelism int) (*config.Network, error) {
	net, err := config.BuildNetworkOpts(s.Configs, nil, config.BuildOptions{Parallelism: parallelism})
	if err != nil {
		return nil, err
	}
	for _, n := range s.Nodes {
		net.Topo.AddNode(netmodel.Node{Name: n.Name, Loopback: n.Loopback})
		if !n.Up {
			net.Topo.SetNodeUp(n.Name, false)
		}
	}
	for _, l := range s.Links {
		nl := net.Topo.AddLink(l)
		if !l.Up {
			net.Topo.SetLinkUp(nl.ID(), false)
		}
	}
	return net, nil
}

// Encode writes the snapshot as JSON.
func (s *Snapshot) Encode(w io.Writer) error {
	return json.NewEncoder(w).Encode(s)
}

// DecodeSnapshot reads a snapshot written by Encode.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	return &s, nil
}

// EncodeRoutes writes route rows in the framework's wire format.
func EncodeRoutes(w io.Writer, routes []netmodel.Route) error {
	return json.NewEncoder(w).Encode(routes)
}

// DecodeRoutes reads route rows written by EncodeRoutes.
func DecodeRoutes(r io.Reader) ([]netmodel.Route, error) {
	var out []netmodel.Route
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("core: decoding routes: %w", err)
	}
	return out, nil
}

// EncodeFlows writes flows in the framework's wire format.
func EncodeFlows(w io.Writer, flows []netmodel.Flow) error {
	return json.NewEncoder(w).Encode(flows)
}

// DecodeFlows reads flows written by EncodeFlows.
func DecodeFlows(r io.Reader) ([]netmodel.Flow, error) {
	var out []netmodel.Flow
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("core: decoding flows: %w", err)
	}
	return out, nil
}
