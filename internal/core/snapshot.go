package core

import (
	"fmt"
	"io"

	"hoyan/internal/config"
	"hoyan/internal/netmodel"
	"hoyan/internal/wire"
)

// Snapshot is the wire form of a network model: every device's configuration
// in its own vendor dialect plus the monitored topology. The master uploads
// one snapshot per simulation task to the object store; workers restore it.
//
// It shares internal/wire's Snapshot struct, so encoding is a free
// conversion: blobs are written in the compact binary wire format and old
// JSON blobs are still decoded transparently.
type Snapshot wire.Snapshot

// SnapshotNode is the wire form of a topology node.
type SnapshotNode = wire.SnapshotNode

// TakeSnapshot serializes a network model.
func TakeSnapshot(net *config.Network) *Snapshot {
	s := &Snapshot{Configs: make(map[string]string, len(net.Devices))}
	for name, d := range net.Devices {
		s.Configs[name] = config.Serialize(d)
	}
	for _, n := range net.Topo.Nodes() {
		s.Nodes = append(s.Nodes, SnapshotNode{Name: n.Name, Loopback: n.Loopback, Up: n.Up})
	}
	for _, l := range net.Topo.Links() {
		s.Links = append(s.Links, *l)
	}
	return s
}

// Restore parses the snapshot back into a network model, sequentially.
func (s *Snapshot) Restore() (*config.Network, error) {
	return s.RestoreParallel(1)
}

// RestoreParallel restores the snapshot parsing device configurations on a
// worker pool (par conventions: 0 = GOMAXPROCS, 1 = sequential). The restored
// model is identical at any parallelism.
func (s *Snapshot) RestoreParallel(parallelism int) (*config.Network, error) {
	net, err := config.BuildNetworkOpts(s.Configs, nil, config.BuildOptions{Parallelism: parallelism})
	if err != nil {
		return nil, err
	}
	for _, n := range s.Nodes {
		net.Topo.AddNode(netmodel.Node{Name: n.Name, Loopback: n.Loopback})
		if !n.Up {
			net.Topo.SetNodeUp(n.Name, false)
		}
	}
	for _, l := range s.Links {
		nl := net.Topo.AddLink(l)
		if !l.Up {
			net.Topo.SetLinkUp(nl.ID(), false)
		}
	}
	return net, nil
}

// Encode writes the snapshot in the compact binary wire format (flate
// compressed: configuration text dominates).
func (s *Snapshot) Encode(w io.Writer) error {
	if err := wire.EncodeSnapshot(w, (*wire.Snapshot)(s)); err != nil {
		return fmt.Errorf("core: encoding snapshot: %w", err)
	}
	return nil
}

// DecodeSnapshot reads a snapshot written by Encode — current binary frames
// or legacy JSON blobs.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	ws, err := wire.DecodeSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	return (*Snapshot)(ws), nil
}

// EncodeRoutes writes route rows in the framework's wire format (compact
// binary with string/AS-path/community interning).
func EncodeRoutes(w io.Writer, routes []netmodel.Route) error {
	if err := wire.EncodeRoutes(w, routes); err != nil {
		return fmt.Errorf("core: encoding routes: %w", err)
	}
	return nil
}

// DecodeRoutes reads route rows written by EncodeRoutes (binary or legacy
// JSON).
func DecodeRoutes(r io.Reader) ([]netmodel.Route, error) {
	out, err := wire.DecodeRoutes(r)
	if err != nil {
		return nil, fmt.Errorf("core: decoding routes: %w", err)
	}
	return out, nil
}

// EncodeFlows writes flows in the framework's wire format.
func EncodeFlows(w io.Writer, flows []netmodel.Flow) error {
	if err := wire.EncodeFlows(w, flows); err != nil {
		return fmt.Errorf("core: encoding flows: %w", err)
	}
	return nil
}

// DecodeFlows reads flows written by EncodeFlows (binary or legacy JSON).
func DecodeFlows(r io.Reader) ([]netmodel.Flow, error) {
	out, err := wire.DecodeFlows(r)
	if err != nil {
		return nil, fmt.Errorf("core: decoding flows: %w", err)
	}
	return out, nil
}
