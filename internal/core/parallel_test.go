package core

import (
	"reflect"
	"sync"
	"testing"

	"hoyan/internal/config"
	"hoyan/internal/gen"
)

// The Parallelism contract: every engine hot path must produce output
// deep-equal to the sequential reference path. These tests pin that on the
// gen.WAN(2) fixture at Parallelism 8 vs 1.

func wan2Fixture(t *testing.T) *gen.Output {
	t.Helper()
	return gen.Generate(gen.WAN(2))
}

func TestRouteSimulationParallelMatchesSequential(t *testing.T) {
	out := wan2Fixture(t)
	seq := NewEngine(out.Net, Options{Parallelism: 1}).RouteSimulation(out.Inputs)
	pll := NewEngine(out.Net, Options{Parallelism: 8}).RouteSimulation(out.Inputs)

	if !seq.GlobalRIB().Equal(pll.GlobalRIB()) {
		onlySeq, onlyPll := seq.GlobalRIB().Diff(pll.GlobalRIB())
		t.Fatalf("parallel route simulation diverged: %d rows only sequential, %d only parallel",
			len(onlySeq), len(onlyPll))
	}
	if !reflect.DeepEqual(seq.GlobalRIB().Rows(), pll.GlobalRIB().Rows()) {
		t.Fatal("parallel route simulation rows not deep-equal to sequential")
	}
	if seq.ECStats.Reduction() != pll.ECStats.Reduction() {
		t.Fatalf("route-EC reduction diverged: sequential %v, parallel %v",
			seq.ECStats.Reduction(), pll.ECStats.Reduction())
	}
}

func TestTrafficSimulationParallelMatchesSequential(t *testing.T) {
	out := wan2Fixture(t)
	seqEng := NewEngine(out.Net, Options{Parallelism: 1})
	pllEng := NewEngine(out.Net, Options{Parallelism: 8})
	seqRoutes := seqEng.RouteSimulation(out.Inputs)
	pllRoutes := pllEng.RouteSimulation(out.Inputs)

	seq := seqEng.TrafficSimulation(seqRoutes, seqRoutes.GlobalRIB().Rows(), out.Flows)
	pll := pllEng.TrafficSimulation(pllRoutes, pllRoutes.GlobalRIB().Rows(), out.Flows)

	if !reflect.DeepEqual(seq.Traffic.Paths, pll.Traffic.Paths) {
		t.Fatal("parallel traffic simulation paths not deep-equal to sequential")
	}
	// Link loads must match bit-for-bit: the parallel merge replays each
	// flow's volume shares in the sequential accumulation order.
	if !reflect.DeepEqual(seq.Traffic.Load, pll.Traffic.Load) {
		t.Fatal("parallel traffic simulation link loads not deep-equal to sequential")
	}
	if seq.ECStats.Reduction() != pll.ECStats.Reduction() {
		t.Fatalf("flow-EC reduction diverged: sequential %v, parallel %v",
			seq.ECStats.Reduction(), pll.ECStats.Reduction())
	}
}

func TestBuildNetworkParallelMatchesSequential(t *testing.T) {
	out := wan2Fixture(t)
	texts := out.ConfigTexts()
	seq, err := config.BuildNetworkOpts(texts, nil, config.BuildOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	pll, err := config.BuildNetworkOpts(texts, nil, config.BuildOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Devices) != len(pll.Devices) {
		t.Fatalf("device count diverged: sequential %d, parallel %d", len(seq.Devices), len(pll.Devices))
	}
	for name, sd := range seq.Devices {
		pd, ok := pll.Devices[name]
		if !ok {
			t.Fatalf("device %s missing from parallel build", name)
		}
		if !reflect.DeepEqual(sd, pd) {
			t.Fatalf("device %s not deep-equal between sequential and parallel builds", name)
		}
	}
}

func TestSnapshotRestoreParallelMatchesSequential(t *testing.T) {
	out := wan2Fixture(t)
	snap := TakeSnapshot(out.Net)
	seq, err := snap.Restore()
	if err != nil {
		t.Fatal(err)
	}
	pll, err := snap.RestoreParallel(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Devices, pll.Devices) {
		t.Fatal("parallel snapshot restore not deep-equal to sequential")
	}
}

// TestConcurrentEngines runs several fully-parallel engines at once over one
// shared network snapshot — the shape dsim workers and pipeline create — and
// must stay clean under `go test -race`.
func TestConcurrentEngines(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	ref := NewEngine(out.Net, Options{Parallelism: 1}).Run(out.Inputs, out.Flows)

	var wg sync.WaitGroup
	results := make([]*Result, 4)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = NewEngine(out.Net, Options{Parallelism: 4}).Run(out.Inputs, out.Flows)
		}(g)
	}
	wg.Wait()

	for g, res := range results {
		if !ref.Routes.GlobalRIB().Equal(res.Routes.GlobalRIB()) {
			t.Fatalf("engine %d: concurrent route simulation diverged from reference", g)
		}
		if !reflect.DeepEqual(ref.Traffic.Traffic.Load, res.Traffic.Traffic.Load) {
			t.Fatalf("engine %d: concurrent traffic simulation diverged from reference", g)
		}
	}
}
