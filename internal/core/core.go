package core
