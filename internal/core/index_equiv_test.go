package core

import (
	"math/rand"
	"testing"

	"hoyan/internal/config"
	"hoyan/internal/gen"
	"hoyan/internal/netmodel"
)

// runBoth executes the same run through the indexed engine and the preserved
// string-keyed reference (Options.DisableIndex) and asserts byte-identity on
// RIBs, representative paths, and link loads.
func runBoth(t *testing.T, label string, net *config.Network, inputs []netmodel.Route, flows []netmodel.Flow) {
	t.Helper()
	indexed := NewEngine(net, Options{Parallelism: 1}).Run(inputs, flows)
	legacy := NewEngine(net, Options{Parallelism: 1, DisableIndex: true}).Run(inputs, flows)
	assertIdentical(t, label, indexed, legacy)
}

// TestIndexLegacyEquivalence pins the tentpole acceptance criterion: on the
// gen.WAN(1) fixture the dense-ID engine and the string-keyed reference
// produce identical results.
func TestIndexLegacyEquivalence(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	runBoth(t, "wan1", out.Net, out.Inputs, out.Flows)
}

// TestIndexLegacyEquivalenceRandomized re-checks the identity on randomized
// degradations of the fixture: seeded subsets of links and nodes taken down,
// which exercises partitioned topologies, dead sessions, withdrawn routes,
// and rerouted traffic through both code paths.
func TestIndexLegacyEquivalenceRandomized(t *testing.T) {
	base := gen.Generate(gen.WAN(1))
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net := base.Net.Clone()
		links := net.Topo.Links()
		downLinks := 1 + rng.Intn(3)
		for i := 0; i < downLinks; i++ {
			net.Topo.SetLinkUp(links[rng.Intn(len(links))].ID(), false)
		}
		if rng.Intn(2) == 0 {
			names := net.Topo.NodeNames()
			net.Topo.SetNodeUp(names[rng.Intn(len(names))], false)
		}
		runBoth(t, "randomized", net, base.Inputs, base.Flows)
	}
}
