// Package core is Hoyan's simulation engine: it orchestrates the IGP, BGP,
// equivalence-class, and traffic-forwarding subsystems into the two
// simulation services of Figure 2 — route simulation (input routes → RIBs)
// and traffic simulation (input flows → paths + link loads) — in the
// original centralized fashion. The distributed framework (internal/dsim)
// runs this same engine on input subsets inside each worker.
package core

import (
	"context"

	"hoyan/internal/bgp"
	"hoyan/internal/config"
	"hoyan/internal/ec"
	"hoyan/internal/isis"
	"hoyan/internal/netmodel"
	"hoyan/internal/traffic"
	"hoyan/internal/vsb"
)

// Options configures the engine; the zero value uses faithful vendor
// profiles with both EC techniques enabled.
type Options struct {
	Profiles vsb.Profiles

	// UseRouteECs / UseFlowECs toggle the §3.1 equivalence-class reductions
	// (the EC-off ablation).
	DisableRouteECs bool
	DisableFlowECs  bool

	// UseTEMetric enables IS-IS TE metrics in SPF.
	UseTEMetric bool

	// Fault-injection knobs for the accuracy campaign.
	FlawedASPathRegex bool
	IgnoreACLs        bool
	IgnorePBR         bool

	// MaxRounds bounds the BGP fixpoint.
	MaxRounds int

	// DisableIncremental forces Engine.Fork to re-simulate every scenario
	// from scratch instead of warm-starting from the base run — the
	// sequential reference path for the incremental what-if engine.
	// Results are byte-identical either way.
	DisableIncremental bool

	// Parallelism bounds the worker pools behind the engine's data-parallel
	// hot paths — per-source SPF, the striped BGP fixpoint (cold, warm, and
	// sealed), per-flow forwarding, EC classification, and config parsing
	// when restoring snapshots. 0 (the default) uses runtime.GOMAXPROCS(0)
	// workers; 1 forces the sequential reference path; results are
	// byte-identical at every setting.
	Parallelism int

	// DisableIndex switches every subsystem to its original string-keyed
	// implementation (isis/bgp/traffic Legacy plus per-call RIB expansion)
	// instead of the dense-ID indexed hot paths. Results are byte-identical
	// either way; the legacy mode is the reference that TestCoreSpeedup and
	// the equivalence suite compare against.
	DisableIndex bool
}

// Engine runs simulations over one network snapshot.
type Engine struct {
	net  *config.Network
	igp  *isis.Result
	opts Options

	// interner holds the dense ID tables of the indexed mode (nil under
	// DisableIndex): every device and link is interned at engine construction
	// and input-route prefixes are interned per route simulation, so its
	// stats describe the ID-table footprint of the run.
	interner *netmodel.Interner

	// base holds the state captured by BaseRun for incremental Fork runs.
	base *baseCapture
}

// NewEngine prepares an engine: it computes the IGP SPF once (the paper's
// pre-processing phase does the same for the base model).
func NewEngine(net *config.Network, opts Options) *Engine {
	return newEngineCtx(nil, net, opts)
}

// newEngineCtx is NewEngine with a cancellation context threaded into the
// initial SPF; a cancelled construction leaves an engine whose results must
// be discarded.
func newEngineCtx(ctx context.Context, net *config.Network, opts Options) *Engine {
	if opts.Profiles == nil {
		opts.Profiles = vsb.Defaults()
	}
	e := &Engine{
		net: net,
		igp: isis.Compute(net.Topo, isis.Options{
			UseTEMetric: opts.UseTEMetric,
			Parallelism: opts.Parallelism,
			Legacy:      opts.DisableIndex,
			Ctx:         ctx,
		}),
		opts: opts,
	}
	if !opts.DisableIndex {
		e.interner = netmodel.NewInterner()
		e.interner.InternTopology(net.Topo)
	}
	return e
}

// ctxErr returns the context's error, tolerating a nil context (the
// no-cancellation convention every non-Ctx entry point uses).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// InternStats reports the interning tables' sizes (devices, links, prefixes,
// approximate ID-table bytes), or nil when the index is disabled.
func (e *Engine) InternStats() *netmodel.InternStats {
	if e.interner == nil {
		return nil
	}
	st := e.interner.Stats()
	return &st
}

// Network returns the engine's network snapshot.
func (e *Engine) Network() *config.Network { return e.net }

// IGP returns the engine's SPF result.
func (e *Engine) IGP() *isis.Result { return e.igp }

// Profiles returns the engine's vendor profiles (defaults applied).
func (e *Engine) Profiles() vsb.Profiles { return e.opts.Profiles }

// RouteResult is the outcome of route simulation.
type RouteResult struct {
	BGP *bgp.Result
	// ECStats reports the route-EC reduction applied (nil with ECs off).
	ECStats *ec.RouteECs

	// global memoizes the flattened global RIB. globalFn, when set, builds it
	// on first use (forks install a merge against the base global RIB there,
	// so scenarios whose intents never read the global RIB skip the merge).
	global   *netmodel.GlobalRIB
	globalFn func() *netmodel.GlobalRIB
}

// RIB implements traffic.RIBSource.
func (r *RouteResult) RIB(device, vrf string) *netmodel.RIB { return r.BGP.RIB(device, vrf) }

// GlobalRIB returns the flattened global RIB. The first call materializes it
// (after any RIB expansion); later calls return the same value.
func (r *RouteResult) GlobalRIB() *netmodel.GlobalRIB {
	if r.global == nil {
		if r.globalFn != nil {
			r.global = r.globalFn()
		} else {
			r.global = r.BGP.GlobalRIB()
		}
	}
	return r.global
}

// RouteSimulation simulates the propagation of the input routes and returns
// the RIBs of all routers. With route ECs enabled, one representative per EC
// is simulated and results are expanded to the members.
func (e *Engine) RouteSimulation(inputs []netmodel.Route) *RouteResult {
	res, _ := e.routeSimulation(nil, inputs)
	return res
}

// RouteSimulationCtx is RouteSimulation with cancellation: the BGP fixpoint
// polls ctx between rounds and the call returns ctx's error (with a nil
// result) once it is done. A nil ctx behaves exactly like RouteSimulation.
func (e *Engine) RouteSimulationCtx(ctx context.Context, inputs []netmodel.Route) (*RouteResult, error) {
	return e.routeSimulation(ctx, inputs)
}

func (e *Engine) routeSimulation(ctx context.Context, inputs []netmodel.Route) (*RouteResult, error) {
	bgpOpts := bgp.Options{
		Profiles:          e.opts.Profiles,
		MaxRounds:         e.opts.MaxRounds,
		FlawedASPathRegex: e.opts.FlawedASPathRegex,
		UseTEMetric:       e.opts.UseTEMetric,
		Legacy:            e.opts.DisableIndex,
		Parallelism:       e.opts.Parallelism,
		Ctx:               ctx,
	}
	if e.interner != nil {
		for i := range inputs {
			e.interner.InternPrefix(inputs[i].Prefix)
		}
	}
	if e.opts.DisableRouteECs {
		res := bgp.Simulate(e.net, e.igp, inputs, bgpOpts)
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		return &RouteResult{BGP: res}, nil
	}
	ecs := ec.ComputeRouteECs(e.net, e.opts.Profiles, inputs, e.opts.Parallelism)
	res := bgp.Simulate(e.net, e.igp, ecs.Representatives(), bgpOpts)
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	for _, t := range res.Tables() {
		if e.opts.DisableIndex {
			ecs.ExpandRIBLegacy(res.RIB(t.Device, t.VRF))
		} else {
			ecs.ExpandRIB(res.RIB(t.Device, t.VRF))
		}
	}
	return &RouteResult{BGP: res, ECStats: ecs}, nil
}

// RouteSimulationSealed runs the boundary-sealed BGP fixpoint of one shard
// (bgp.Seal): only devices inside the seal originate and decide, the inbound
// boundary contract is replayed as frozen external inputs, and the result
// carries the shard's outbound contract in BGP.BoundaryOut. Route ECs are
// never applied here — the sharded verifier splits representatives per shard
// up front and expands members centrally at stitch time, so per-shard runs
// always work on the rows they were given.
func (e *Engine) RouteSimulationSealed(inputs []netmodel.Route, seal *bgp.Seal) *RouteResult {
	bgpOpts := bgp.Options{
		Profiles:          e.opts.Profiles,
		MaxRounds:         e.opts.MaxRounds,
		FlawedASPathRegex: e.opts.FlawedASPathRegex,
		UseTEMetric:       e.opts.UseTEMetric,
		Parallelism:       e.opts.Parallelism,
		Seal:              seal,
	}
	if e.interner != nil {
		for i := range inputs {
			e.interner.InternPrefix(inputs[i].Prefix)
		}
	}
	return &RouteResult{BGP: bgp.Simulate(e.net, e.igp, inputs, bgpOpts)}
}

// TrafficResult is the outcome of traffic simulation.
type TrafficResult struct {
	Traffic *traffic.Result
	// ECStats reports the flow-EC reduction applied (nil with ECs off).
	ECStats *ec.FlowECs
}

// TrafficSimulation forwards the input flows over the given RIBs and
// computes link loads. With flow ECs enabled, one representative per class
// carries the class's total volume.
func (e *Engine) TrafficSimulation(ribs traffic.RIBSource, routeRows []netmodel.Route, flows []netmodel.Flow) *TrafficResult {
	res, _ := e.trafficSimulation(nil, ribs, routeRows, flows)
	return res
}

// TrafficSimulationCtx is TrafficSimulation with cancellation (per-flow
// polling; nil result and ctx's error once it is done).
func (e *Engine) TrafficSimulationCtx(ctx context.Context, ribs traffic.RIBSource, routeRows []netmodel.Route, flows []netmodel.Flow) (*TrafficResult, error) {
	return e.trafficSimulation(ctx, ribs, routeRows, flows)
}

func (e *Engine) trafficSimulation(ctx context.Context, ribs traffic.RIBSource, routeRows []netmodel.Route, flows []netmodel.Flow) (*TrafficResult, error) {
	fw := e.forwarderCtx(ctx, e.net, e.igp, ribs)
	if e.opts.DisableFlowECs {
		res := fw.Simulate(flows)
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		return &TrafficResult{Traffic: res}, nil
	}
	ecs := ec.ComputeFlowECs(e.net, ec.RIBPrefixes(routeRows), flows, e.opts.Parallelism)
	res := fw.Simulate(ecs.Representatives())
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return &TrafficResult{Traffic: res, ECStats: ecs}, nil
}

// Result is the outcome of a full simulation run.
type Result struct {
	Routes  *RouteResult
	Traffic *TrafficResult
}

// Run executes route simulation followed by traffic simulation — the
// centralized pipeline of Figure 2.
func (e *Engine) Run(inputs []netmodel.Route, flows []netmodel.Flow) *Result {
	res, _ := e.runCtx(nil, inputs, flows)
	return res
}

// RunCtx is Run with cancellation: it returns ctx's error (with a nil
// result) as soon as a stage observes the cancelled context, without
// finishing the remaining stages.
func (e *Engine) RunCtx(ctx context.Context, inputs []netmodel.Route, flows []netmodel.Flow) (*Result, error) {
	return e.runCtx(ctx, inputs, flows)
}

func (e *Engine) runCtx(ctx context.Context, inputs []netmodel.Route, flows []netmodel.Flow) (*Result, error) {
	routes, err := e.routeSimulation(ctx, inputs)
	if err != nil {
		return nil, err
	}
	var tr *TrafficResult
	if len(flows) > 0 {
		tr, err = e.trafficSimulation(ctx, routes, routes.GlobalRIB().Rows(), flows)
		if err != nil {
			return nil, err
		}
	}
	return &Result{Routes: routes, Traffic: tr}, nil
}
