package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"hoyan/internal/gen"
	"hoyan/internal/netmodel"
)

// TestForkCtxCancelledReturnsPromptly is the satellite guarantee behind
// per-query deadlines: a fork whose context is already dead must come back
// with the context's error without simulating the scenario.
func TestForkCtxCancelledReturnsPromptly(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	eng := NewEngine(out.Net, Options{})
	eng.BaseRun(out.Inputs, out.Flows)

	links := out.Net.Topo.Links()
	d := Delta{LinksDown: []netmodel.LinkID{links[0].ID()}}
	scratch := out.Net.Clone()
	applyDelta(scratch, d)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, _, err := eng.ForkCtx(ctx, scratch, d)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForkCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("ForkCtx on cancelled ctx returned a result")
	}
	// A full WAN(1) fork takes milliseconds; the cancelled one must not do
	// meaningfully more work than the entry checks. The bound is generous to
	// stay robust on loaded CI machines while still catching a fork that ran
	// the whole pipeline at larger scales.
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled ForkCtx took %v", elapsed)
	}

	// The full-fallback path (nodes up) must observe cancellation too.
	dn := Delta{NodesUp: []string{out.Net.Topo.Links()[0].A}}
	res, _, err = eng.ForkCtx(ctx, out.Net.Clone(), dn)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("full-fallback ForkCtx on cancelled ctx: res=%v err=%v", res, err)
	}
}

// TestForkCtxLiveIdentity pins that threading a live context changes nothing:
// ForkCtx(ctx) and Fork produce byte-identical results.
func TestForkCtxLiveIdentity(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	eng := NewEngine(out.Net, Options{})
	eng.BaseRun(out.Inputs, out.Flows)

	links := out.Net.Topo.Links()
	step := len(links)/6 + 1
	for i := 0; i < len(links); i += step {
		d := Delta{LinksDown: []netmodel.LinkID{links[i].ID()}}
		scratch := out.Net.Clone()
		applyDelta(scratch, d)
		withCtx, _, err := eng.ForkCtx(context.Background(), scratch, d)
		if err != nil {
			t.Fatalf("ForkCtx: %v", err)
		}
		plain, _ := eng.Fork(scratch, d)
		assertIdentical(t, links[i].ID().String(), withCtx, plain)
	}
}

// TestRunCtxCancelled covers the RouteSimulation/Run wrappers.
func TestRunCtxCancelled(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	eng := NewEngine(out.Net, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := eng.RunCtx(ctx, out.Inputs, out.Flows); !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("RunCtx on cancelled ctx: res=%v err=%v", res, err)
	}
	if res, err := eng.RouteSimulationCtx(ctx, out.Inputs); !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("RouteSimulationCtx on cancelled ctx: res=%v err=%v", res, err)
	}
}

// TestBaseRunCtxCancelledLeavesNoBase: a cancelled BaseRun must not capture a
// partial base, or later forks would warm-start from garbage.
func TestBaseRunCtxCancelledLeavesNoBase(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	eng := NewEngine(out.Net, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := eng.BaseRunCtx(ctx, out.Inputs, out.Flows); !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("BaseRunCtx on cancelled ctx: res=%v err=%v", res, err)
	}
	if eng.HasBase() {
		t.Fatalf("cancelled BaseRunCtx left a base capture")
	}
	if eng.BaseResult() != nil {
		t.Fatalf("cancelled BaseRunCtx left a base result")
	}

	// A live BaseRunCtx captures normally and BaseResult round-trips it.
	res, err := eng.BaseRunCtx(context.Background(), out.Inputs, out.Flows)
	if err != nil {
		t.Fatalf("BaseRunCtx: %v", err)
	}
	if !eng.HasBase() {
		t.Fatalf("BaseRunCtx did not capture a base")
	}
	got := eng.BaseResult()
	if got == nil || got.Routes != res.Routes {
		t.Fatalf("BaseResult does not return the captured base result")
	}
}
