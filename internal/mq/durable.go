package mq

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"hoyan/internal/durable"
	"hoyan/internal/telemetry"
)

// Durable is a disk-backed Queue: every push and pop is logged to a WAL
// before it takes effect, so a restart replays the log and recovers exactly
// the undelivered messages — a message pushed but never popped survives the
// queue process dying. Safe for concurrent use.
//
// Delivery is at-least-once across a crash window (a pop whose log record
// was lost is re-delivered after recovery); the framework's attempt fencing
// makes duplicate delivery harmless.
type Durable struct {
	mu      sync.Mutex
	cond    *sync.Cond
	topics  map[string][]Message
	wal     *durable.WAL
	opts    durable.Options
	appends int
	closed  bool
	crashed bool

	pushes *telemetry.Counter
	pops   *telemetry.Counter
	depth  *telemetry.Gauge
}

// mqRec is one WAL record: an accepted push or a delivered pop.
type mqRec struct {
	Op    string   `json:"op"` // "push" or "pop"
	Topic string   `json:"topic"`
	Msg   *Message `json:"msg,omitempty"` // push only
}

// OpenDurable opens (creating if necessary) a WAL-backed queue persisted at
// path, replaying any existing log to rebuild the undelivered messages.
func OpenDurable(path string, opts durable.Options) (*Durable, error) {
	q := &Durable{
		topics: make(map[string][]Message),
		opts:   opts,
		pushes: &telemetry.Counter{},
		pops:   &telemetry.Counter{},
		depth:  &telemetry.Gauge{},
	}
	q.cond = sync.NewCond(&q.mu)
	wal, _, err := durable.Open(path, opts, func(p []byte) error {
		var rec mqRec
		if err := json.Unmarshal(p, &rec); err != nil {
			return fmt.Errorf("bad mq record: %w", err)
		}
		switch rec.Op {
		case "push":
			if rec.Msg == nil {
				return fmt.Errorf("mq push record without message")
			}
			q.topics[rec.Topic] = append(q.topics[rec.Topic], *rec.Msg)
		case "pop":
			if ms := q.topics[rec.Topic]; len(ms) > 0 {
				q.topics[rec.Topic] = ms[1:]
			}
		default:
			return fmt.Errorf("bad mq op %q", rec.Op)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	q.wal = wal
	q.depth.Set(float64(q.depthLocked()))
	return q, nil
}

// Instrument re-binds the queue's counters and durability metrics to
// registered metrics in reg, carrying over counts accumulated so far.
func (q *Durable) Instrument(reg *telemetry.Registry) {
	q.mu.Lock()
	pushes := reg.Counter("hoyan_mq_pushes_total", "messages accepted by the queue")
	pushes.Add(q.pushes.Value())
	q.pushes = pushes
	pops := reg.Counter("hoyan_mq_pops_total", "messages delivered by the queue")
	pops.Add(q.pops.Value())
	q.pops = pops
	depth := reg.Gauge("hoyan_mq_depth", "messages currently queued across all topics")
	depth.Set(float64(q.depthLocked()))
	q.depth = depth
	q.mu.Unlock()
	q.wal.Instrument(reg, "mq")
}

func (q *Durable) depthLocked() int64 {
	var n int64
	for _, ms := range q.topics {
		n += int64(len(ms))
	}
	return n
}

// Stats implements StatsProvider.
func (q *Durable) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{Pushes: q.pushes.Value(), Pops: q.pops.Value(), Depth: q.depthLocked()}
}

// logLocked appends one WAL record, compacting the log down to the
// undelivered messages every CompactEvery appends.
func (q *Durable) logLocked(rec mqRec) error {
	p, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := q.wal.Append(p); err != nil {
		return err
	}
	q.appends++
	every := q.opts.CompactEvery
	if every <= 0 {
		every = durable.DefaultCompactEvery
	}
	if q.appends >= every {
		if err := q.compactLocked(rec); err != nil {
			return err
		}
		q.appends = 0
	}
	return nil
}

// compactLocked rewrites the WAL as push records of every queued message,
// plus the just-logged mutation (applied by the caller after logging).
func (q *Durable) compactLocked(tail mqRec) error {
	var snap [][]byte
	for topic, ms := range q.topics {
		for i := range ms {
			p, err := json.Marshal(mqRec{Op: "push", Topic: topic, Msg: &ms[i]})
			if err != nil {
				return err
			}
			snap = append(snap, p)
		}
	}
	tp, err := json.Marshal(tail)
	if err != nil {
		return err
	}
	snap = append(snap, tp)
	return q.wal.Compact(snap)
}

// Push implements Queue.
func (q *Durable) Push(topic string, m Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.crashed {
		return durable.ErrCrashed
	}
	if q.closed {
		return ErrClosed
	}
	if err := q.logLocked(mqRec{Op: "push", Topic: topic, Msg: &m}); err != nil {
		return err
	}
	q.topics[topic] = append(q.topics[topic], m)
	q.pushes.Inc()
	q.depth.Add(1)
	q.cond.Broadcast()
	return nil
}

// Pop implements Queue: the pop is logged before the message is handed out,
// so a delivered message is never re-delivered after a clean restart (an
// unlogged delivery — crash between log and hand-off — errs on the safe side
// and re-delivers).
func (q *Durable) Pop(topic string, wait time.Duration) (Message, bool, error) {
	deadline := time.Now().Add(wait)
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.crashed {
			return Message{}, false, durable.ErrCrashed
		}
		if q.closed {
			return Message{}, false, ErrClosed
		}
		if ms := q.topics[topic]; len(ms) > 0 {
			if err := q.logLocked(mqRec{Op: "pop", Topic: topic}); err != nil {
				return Message{}, false, err
			}
			m := ms[0]
			q.topics[topic] = q.topics[topic][1:]
			q.pops.Inc()
			q.depth.Add(-1)
			return m, true, nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return Message{}, false, nil
		}
		waker := time.AfterFunc(remain, q.cond.Broadcast)
		q.cond.Wait()
		waker.Stop()
	}
}

// Len implements Queue.
func (q *Durable) Len(topic string) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.crashed {
		return 0, durable.ErrCrashed
	}
	if q.closed {
		return 0, ErrClosed
	}
	return len(q.topics[topic]), nil
}

// Healthy reports nil while durable writes are landing.
func (q *Durable) Healthy() error { return q.wal.Healthy() }

// Close wakes all waiters, flushes the WAL, and rejects further operations
// with ErrClosed (fatal to workers — this is orderly shutdown).
func (q *Durable) Close() {
	q.mu.Lock()
	if q.closed || q.crashed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	q.wal.Close()
}

// CrashClose simulates the queue process dying: waiters wake and every
// subsequent operation fails with durable.ErrCrashed — transient, unlike
// ErrClosed, so workers keep retrying until a reopened queue takes over.
func (q *Durable) CrashClose() {
	q.mu.Lock()
	if q.closed || q.crashed {
		q.mu.Unlock()
		return
	}
	q.crashed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	q.wal.CrashClose()
}
