package mq

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func TestMemoryPushPop(t *testing.T) {
	q := NewMemory()
	if err := q.Push("t", Message{ID: "1", Kind: "route"}); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("t", Message{ID: "2"}); err != nil {
		t.Fatal(err)
	}
	if n, _ := q.Len("t"); n != 2 {
		t.Errorf("Len = %d", n)
	}
	m, ok, err := q.Pop("t", time.Second)
	if err != nil || !ok || m.ID != "1" {
		t.Fatalf("Pop = %v %v %v (FIFO order)", m, ok, err)
	}
	m, ok, _ = q.Pop("t", time.Second)
	if !ok || m.ID != "2" {
		t.Fatalf("Pop = %v %v", m, ok)
	}
}

func TestMemoryPopTimeout(t *testing.T) {
	q := NewMemory()
	start := time.Now()
	_, ok, err := q.Pop("empty", 30*time.Millisecond)
	if err != nil || ok {
		t.Fatalf("want timeout, got %v %v", ok, err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("returned before the deadline")
	}
}

func TestMemoryBlockingWakeup(t *testing.T) {
	q := NewMemory()
	done := make(chan Message, 1)
	go func() {
		m, ok, _ := q.Pop("t", 2*time.Second)
		if ok {
			done <- m
		}
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push("t", Message{ID: "late"})
	select {
	case m, ok := <-done:
		if !ok || m.ID != "late" {
			t.Fatalf("got %v %v", m, ok)
		}
	case <-time.After(time.Second):
		t.Fatal("consumer never woke up")
	}
}

func TestMemoryConcurrentConsumers(t *testing.T) {
	q := NewMemory()
	const n = 100
	for i := 0; i < n; i++ {
		q.Push("t", Message{ID: fmt.Sprint(i)})
	}
	var mu sync.Mutex
	seen := map[string]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, ok, err := q.Pop("t", 50*time.Millisecond)
				if err != nil || !ok {
					return
				}
				mu.Lock()
				if seen[m.ID] {
					t.Errorf("message %s delivered twice", m.ID)
				}
				seen[m.ID] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Errorf("delivered %d of %d", len(seen), n)
	}
}

func TestMemoryClose(t *testing.T) {
	q := NewMemory()
	q.Close()
	if err := q.Push("t", Message{}); err != ErrClosed {
		t.Errorf("Push after close: %v", err)
	}
	if _, _, err := q.Pop("t", time.Millisecond); err != ErrClosed {
		t.Errorf("Pop after close: %v", err)
	}
}

func TestRPCQueue(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	Serve(l, NewMemory())

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Push("t", Message{ID: "x", Kind: "route", Payload: []byte("data")}); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Len("t"); err != nil || n != 1 {
		t.Fatalf("Len = %d %v", n, err)
	}
	m, ok, err := c.Pop("t", time.Second)
	if err != nil || !ok || m.ID != "x" || string(m.Payload) != "data" {
		t.Fatalf("Pop = %+v %v %v", m, ok, err)
	}
	// Timeout over RPC.
	if _, ok, err := c.Pop("t", 50*time.Millisecond); ok || err != nil {
		t.Fatalf("want rpc timeout, got ok=%v err=%v", ok, err)
	}
}

func TestRPCTwoClients(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	Serve(l, NewMemory())

	producer, _ := Dial(l.Addr().String())
	consumer, _ := Dial(l.Addr().String())
	defer producer.Close()
	defer consumer.Close()

	go func() {
		time.Sleep(20 * time.Millisecond)
		producer.Push("jobs", Message{ID: "job-1"})
	}()
	m, ok, err := consumer.Pop("jobs", 2*time.Second)
	if err != nil || !ok || m.ID != "job-1" {
		t.Fatalf("cross-client delivery failed: %v %v %v", m, ok, err)
	}
}
