package mq

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"hoyan/internal/rpcx"
)

func TestMemoryPushPop(t *testing.T) {
	q := NewMemory()
	if err := q.Push("t", Message{ID: "1", Kind: "route"}); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("t", Message{ID: "2"}); err != nil {
		t.Fatal(err)
	}
	if n, _ := q.Len("t"); n != 2 {
		t.Errorf("Len = %d", n)
	}
	m, ok, err := q.Pop("t", time.Second)
	if err != nil || !ok || m.ID != "1" {
		t.Fatalf("Pop = %v %v %v (FIFO order)", m, ok, err)
	}
	m, ok, _ = q.Pop("t", time.Second)
	if !ok || m.ID != "2" {
		t.Fatalf("Pop = %v %v", m, ok)
	}
}

func TestMemoryPopTimeout(t *testing.T) {
	q := NewMemory()
	start := time.Now()
	_, ok, err := q.Pop("empty", 30*time.Millisecond)
	if err != nil || ok {
		t.Fatalf("want timeout, got %v %v", ok, err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("returned before the deadline")
	}
}

func TestMemoryBlockingWakeup(t *testing.T) {
	q := NewMemory()
	done := make(chan Message, 1)
	go func() {
		m, ok, _ := q.Pop("t", 2*time.Second)
		if ok {
			done <- m
		}
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push("t", Message{ID: "late"})
	select {
	case m, ok := <-done:
		if !ok || m.ID != "late" {
			t.Fatalf("got %v %v", m, ok)
		}
	case <-time.After(time.Second):
		t.Fatal("consumer never woke up")
	}
}

func TestMemoryConcurrentConsumers(t *testing.T) {
	q := NewMemory()
	const n = 100
	for i := 0; i < n; i++ {
		q.Push("t", Message{ID: fmt.Sprint(i)})
	}
	var mu sync.Mutex
	seen := map[string]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, ok, err := q.Pop("t", 50*time.Millisecond)
				if err != nil || !ok {
					return
				}
				mu.Lock()
				if seen[m.ID] {
					t.Errorf("message %s delivered twice", m.ID)
				}
				seen[m.ID] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Errorf("delivered %d of %d", len(seen), n)
	}
}

func TestMemoryClose(t *testing.T) {
	q := NewMemory()
	q.Close()
	if err := q.Push("t", Message{}); err != ErrClosed {
		t.Errorf("Push after close: %v", err)
	}
	if _, _, err := q.Pop("t", time.Millisecond); err != ErrClosed {
		t.Errorf("Pop after close: %v", err)
	}
}

func TestRPCQueue(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	Serve(l, NewMemory())

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Push("t", Message{ID: "x", Kind: "route", Payload: []byte("data")}); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Len("t"); err != nil || n != 1 {
		t.Fatalf("Len = %d %v", n, err)
	}
	m, ok, err := c.Pop("t", time.Second)
	if err != nil || !ok || m.ID != "x" || string(m.Payload) != "data" {
		t.Fatalf("Pop = %+v %v %v", m, ok, err)
	}
	// Timeout over RPC.
	if _, ok, err := c.Pop("t", 50*time.Millisecond); ok || err != nil {
		t.Fatalf("want rpc timeout, got ok=%v err=%v", ok, err)
	}
}

func TestRPCErrClosedSurvivesBoundary(t *testing.T) {
	// A worker deciding whether to keep consuming must see the ErrClosed
	// sentinel even when the queue lives across a TCP hop.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mem := NewMemory()
	Serve(l, mem)

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mem.Close()

	if err := c.Push("t", Message{ID: "x"}); !errors.Is(err, ErrClosed) {
		t.Errorf("Push after close over RPC: %v, want ErrClosed", err)
	}
	if _, _, err := c.Pop("t", 10*time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Errorf("Pop after close over RPC: %v, want ErrClosed", err)
	}
	if _, err := c.Len("t"); !errors.Is(err, ErrClosed) {
		t.Errorf("Len after close over RPC: %v, want ErrClosed", err)
	}
}

func TestRPCHungServerTimesOut(t *testing.T) {
	// A server that accepts and never speaks gob must not wedge the client
	// forever: the per-call I/O deadline fires instead.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var held net.Conn
	accepted := make(chan struct{})
	go func() {
		held, _ = l.Accept()
		close(accepted)
	}()
	defer func() {
		<-accepted
		if held != nil {
			held.Close()
		}
	}()

	c, err := DialOptions(l.Addr().String(), rpcx.Options{CallTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Push("t", Message{ID: "x"}); err == nil {
		t.Fatal("Push to hung server succeeded")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Push blocked %v despite 100ms call timeout", d)
	}
}

func TestRPCPopChunkStaysUnderCallTimeout(t *testing.T) {
	// A long Pop wait must be sliced into chunks shorter than the I/O
	// deadline, or an idle (but healthy) queue would look like a dead server.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	Serve(l, NewMemory())

	c, err := DialOptions(l.Addr().String(), rpcx.Options{CallTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Wait longer than the call timeout: must return a clean timeout (no
	// message), not an I/O error.
	if _, ok, err := c.Pop("idle", 700*time.Millisecond); ok || err != nil {
		t.Fatalf("Pop on idle queue = ok=%v err=%v, want clean timeout", ok, err)
	}
}

func TestRPCTwoClients(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	Serve(l, NewMemory())

	producer, _ := Dial(l.Addr().String())
	consumer, _ := Dial(l.Addr().String())
	defer producer.Close()
	defer consumer.Close()

	go func() {
		time.Sleep(20 * time.Millisecond)
		producer.Push("jobs", Message{ID: "job-1"})
	}()
	m, ok, err := consumer.Pop("jobs", 2*time.Second)
	if err != nil || !ok || m.ID != "job-1" {
		t.Fatalf("cross-client delivery failed: %v %v %v", m, ok, err)
	}
}
