package mq

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hoyan/internal/durable"
)

func openDurableQ(t *testing.T, path string, opts durable.Options) *Durable {
	t.Helper()
	q, err := OpenDurable(path, opts)
	if err != nil {
		t.Fatalf("OpenDurable(%s): %v", path, err)
	}
	return q
}

// TestDurableQueueRecovery pushes a batch, pops some, crashes, and checks
// exactly the unpopped messages survive, in order.
func TestDurableQueueRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mq.wal")
	q := openDurableQ(t, path, durable.Options{Fsync: durable.SyncNever})
	for i := 0; i < 10; i++ {
		if err := q.Push("route", Message{ID: fmt.Sprintf("m%d", i), Kind: "route", Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Push("traffic", Message{ID: "tm0", Kind: "traffic"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		m, ok, err := q.Pop("route", time.Second)
		if !ok || err != nil || m.ID != fmt.Sprintf("m%d", i) {
			t.Fatalf("Pop %d = %+v ok=%v err=%v", i, m, ok, err)
		}
	}
	q.CrashClose()
	if _, _, err := q.Pop("route", time.Millisecond); !errors.Is(err, durable.ErrCrashed) {
		t.Fatalf("Pop after crash = %v, want ErrCrashed", err)
	}
	if err := q.Push("route", Message{}); !errors.Is(err, durable.ErrCrashed) {
		t.Fatalf("Push after crash = %v, want ErrCrashed", err)
	}

	q2 := openDurableQ(t, path, durable.Options{})
	defer q2.Close()
	if n, err := q2.Len("route"); n != 6 || err != nil {
		t.Fatalf("Len(route) after recovery = %d, %v", n, err)
	}
	if n, err := q2.Len("traffic"); n != 1 || err != nil {
		t.Fatalf("Len(traffic) after recovery = %d, %v", n, err)
	}
	for i := 4; i < 10; i++ {
		m, ok, err := q2.Pop("route", time.Second)
		if !ok || err != nil || m.ID != fmt.Sprintf("m%d", i) {
			t.Fatalf("recovered Pop %d = %+v ok=%v err=%v", i, m, ok, err)
		}
	}
	if _, ok, _ := q2.Pop("route", 10*time.Millisecond); ok {
		t.Fatal("extra message after recovery")
	}
}

// TestDurableQueueCrashWakesWaiters checks a blocked Pop returns ErrCrashed
// promptly (not ErrClosed, which workers treat as fatal).
func TestDurableQueueCrashWakesWaiters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mq.wal")
	q := openDurableQ(t, path, durable.Options{})
	errc := make(chan error, 1)
	go func() {
		_, _, err := q.Pop("route", time.Minute)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	q.CrashClose()
	select {
	case err := <-errc:
		if !errors.Is(err, durable.ErrCrashed) {
			t.Fatalf("blocked Pop returned %v, want ErrCrashed", err)
		}
		if errors.Is(err, ErrClosed) {
			t.Fatal("crash must not look like orderly shutdown")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Pop not woken by CrashClose")
	}
}

// TestDurableQueueTornTail tears the WAL mid-record: the queue reopens with
// the torn push dropped and everything before it intact.
func TestDurableQueueTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mq.wal")
	q := openDurableQ(t, path, durable.Options{Fsync: durable.SyncNever})
	if err := q.Push("route", Message{ID: "kept"}); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("route", Message{ID: "torn"}); err != nil {
		t.Fatal(err)
	}
	q.CrashClose()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	q2 := openDurableQ(t, path, durable.Options{})
	defer q2.Close()
	m, ok, err := q2.Pop("route", time.Second)
	if !ok || err != nil || m.ID != "kept" {
		t.Fatalf("Pop = %+v ok=%v err=%v", m, ok, err)
	}
	if _, ok, _ := q2.Pop("route", 10*time.Millisecond); ok {
		t.Fatal("torn push survived")
	}
}

// TestDurableQueueCompaction drives the log past its threshold and checks
// the snapshot keeps only queued messages.
func TestDurableQueueCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mq.wal")
	q := openDurableQ(t, path, durable.Options{Fsync: durable.SyncNever, CompactEvery: 16})
	for i := 0; i < 100; i++ {
		if err := q.Push("route", Message{ID: fmt.Sprintf("m%d", i)}); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := q.Pop("route", time.Second); !ok || err != nil {
			t.Fatalf("Pop %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := q.Push("route", Message{ID: "last"}); err != nil {
		t.Fatal(err)
	}
	q.Close()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() > 2048 {
		t.Fatalf("mq WAL not compacted: %d bytes after 100 push/pop cycles", info.Size())
	}
	q2 := openDurableQ(t, path, durable.Options{})
	defer q2.Close()
	m, ok, err := q2.Pop("route", time.Second)
	if !ok || err != nil || m.ID != "last" {
		t.Fatalf("recovered Pop = %+v ok=%v err=%v", m, ok, err)
	}
}
