package mq

import (
	"fmt"
	"net"
	"net/rpc"
	"time"

	"hoyan/internal/rpcx"
	"hoyan/internal/telemetry"
)

// Service exposes a Queue over net/rpc. It keeps its own RPC-level counters
// (telemetry instruments, detached unless Serve was given a registry) so
// Stats works even when the wrapped queue does not track any.
type Service struct {
	q Queue

	pushes *telemetry.Counter
	pops   *telemetry.Counter
}

func newService(q Queue) *Service {
	return &Service{q: q, pushes: &telemetry.Counter{}, pops: &telemetry.Counter{}}
}

// PushArgs are the arguments of MQ.Push.
type PushArgs struct {
	Topic string
	Msg   Message
}

// Push is the RPC form of Queue.Push.
func (s *Service) Push(args *PushArgs, _ *struct{}) error {
	if err := s.q.Push(args.Topic, args.Msg); err != nil {
		return err
	}
	s.pushes.Inc()
	return nil
}

// PopArgs are the arguments of MQ.Pop.
type PopArgs struct {
	Topic  string
	WaitMs int64
}

// PopReply is the result of MQ.Pop.
type PopReply struct {
	Msg Message
	OK  bool
}

// Pop is the RPC form of Queue.Pop. Long waits are chunked client-side; the
// server caps a single wait at 30s to keep connections healthy.
func (s *Service) Pop(args *PopArgs, reply *PopReply) error {
	wait := time.Duration(args.WaitMs) * time.Millisecond
	if wait > 30*time.Second {
		wait = 30 * time.Second
	}
	m, ok, err := s.q.Pop(args.Topic, wait)
	if ok {
		s.pops.Inc()
	}
	reply.Msg, reply.OK = m, ok
	return err
}

// Stats is the RPC form of StatsProvider.Stats: the wrapped queue's counters
// when it tracks them (they include in-process traffic too), otherwise the
// RPC server's own (with a best-effort depth probe).
func (s *Service) Stats(_ *struct{}, reply *Stats) error {
	if sp, ok := s.q.(StatsProvider); ok {
		*reply = sp.Stats()
		return nil
	}
	*reply = Stats{Pushes: s.pushes.Value(), Pops: s.pops.Value()}
	return nil
}

// LenArgs are the arguments of MQ.Len.
type LenArgs struct{ Topic string }

// Len is the RPC form of Queue.Len.
func (s *Service) Len(args *LenArgs, reply *int) error {
	n, err := s.q.Len(args.Topic)
	*reply = n
	return err
}

// Serve registers the queue on a fresh rpc server and serves connections on
// l until the listener is closed. It returns immediately; accept errors end
// the loop silently (listener closed).
func Serve(l net.Listener, q Queue) { ServeRegistry(l, q, nil) }

// ServeRegistry is Serve with the service's RPC counters registered in reg
// (nil reg keeps them detached). If q is a *Memory, its own counters are
// bound to the same registry.
func ServeRegistry(l net.Listener, q Queue, reg *telemetry.Registry) {
	sv := newService(q)
	if reg != nil {
		sv.pushes = reg.Counter("hoyan_mq_rpc_pushes_total", "push RPCs served")
		sv.pops = reg.Counter("hoyan_mq_rpc_pops_total", "pop RPCs that delivered a message")
		if m, ok := q.(*Memory); ok {
			m.Instrument(reg)
		}
	}
	srv := rpc.NewServer()
	srv.RegisterName("MQ", sv)
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
}

// Client is a Queue talking to a remote Serve instance over a reconnecting
// connection with dial and per-call I/O timeouts.
type Client struct {
	c *rpcx.Client
	// chunk is the per-RPC slice of a long Pop wait; it must stay well below
	// the I/O timeout, since a waiting server legitimately sends no bytes.
	chunk time.Duration
}

// Dial connects to a queue server with default timeouts.
func Dial(addr string) (*Client, error) { return DialOptions(addr, rpcx.Options{}) }

// DialOptions connects with explicit timeouts.
func DialOptions(addr string, opts rpcx.Options) (*Client, error) {
	c, err := rpcx.Dial(addr, opts)
	if err != nil {
		return nil, fmt.Errorf("mq: dial %s: %w", addr, err)
	}
	chunk := 5 * time.Second
	if opts.CallTimeout > 0 && chunk > opts.CallTimeout/2 {
		chunk = opts.CallTimeout / 2
	}
	return &Client{c: c, chunk: chunk}, nil
}

// mapErr restores the ErrClosed sentinel, which crosses the RPC boundary as a
// flat rpc.ServerError string: without this, a worker cannot distinguish "the
// queue was shut down" (stop consuming) from a transient fault (retry).
func mapErr(err error) error {
	if err == nil {
		return nil
	}
	if se, ok := err.(rpc.ServerError); ok && string(se) == ErrClosed.Error() {
		return ErrClosed
	}
	return err
}

// Push implements Queue.
func (c *Client) Push(topic string, m Message) error {
	return mapErr(c.c.Call("MQ.Push", &PushArgs{Topic: topic, Msg: m}, &struct{}{}))
}

// Pop implements Queue, chunking long waits into server-side slices.
func (c *Client) Pop(topic string, wait time.Duration) (Message, bool, error) {
	deadline := time.Now().Add(wait)
	for {
		chunk := time.Until(deadline)
		if chunk <= 0 {
			return Message{}, false, nil
		}
		if chunk > c.chunk {
			chunk = c.chunk
		}
		var reply PopReply
		if err := c.c.Call("MQ.Pop", &PopArgs{Topic: topic, WaitMs: chunk.Milliseconds()}, &reply); err != nil {
			return Message{}, false, mapErr(err)
		}
		if reply.OK {
			return reply.Msg, true, nil
		}
		if time.Now().After(deadline) {
			return Message{}, false, nil
		}
	}
}

// Len implements Queue.
func (c *Client) Len(topic string) (int, error) {
	var n int
	err := c.c.Call("MQ.Len", &LenArgs{Topic: topic}, &n)
	return n, mapErr(err)
}

// Stats implements StatsProvider against the remote server (errors are
// swallowed: a stats probe failing should never fail a caller that only
// wants numbers — zeros are returned instead).
func (c *Client) Stats() Stats {
	var st Stats
	if err := c.c.Call("MQ.Stats", &struct{}{}, &st); err != nil {
		return Stats{}
	}
	return st
}

// Close closes the client connection.
func (c *Client) Close() error { return c.c.Close() }
