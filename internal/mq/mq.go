// Package mq provides the message-queue substrate of the distributed
// simulation framework (Figure 3): the master pushes one message per subtask
// and each working server pops messages from the topic it listens to.
//
// Two implementations are provided: an in-memory queue for single-process
// clusters and tests, and a TCP server/client pair (net/rpc over gob) so
// masters and workers can run as separate OS processes, standing in for the
// production message-queue service.
package mq

import (
	"errors"
	"sync"
	"time"
)

// Message is one queue entry. Payload is opaque to the queue (the framework
// stores JSON-encoded subtask metadata).
type Message struct {
	ID      string
	Kind    string
	Payload []byte
}

// Queue is the interface both implementations satisfy.
type Queue interface {
	// Push appends a message to a topic.
	Push(topic string, m Message) error
	// Pop removes the oldest message from a topic, waiting up to wait for
	// one to arrive. ok is false on timeout.
	Pop(topic string, wait time.Duration) (m Message, ok bool, err error)
	// Len returns the number of queued messages in a topic.
	Len(topic string) (int, error)
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("mq: queue closed")

// Memory is an in-memory Queue. The zero value is not usable; call NewMemory.
type Memory struct {
	mu     sync.Mutex
	cond   *sync.Cond
	topics map[string][]Message
	closed bool
}

// NewMemory creates an empty in-memory queue.
func NewMemory() *Memory {
	m := &Memory{topics: make(map[string][]Message)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Push implements Queue.
func (q *Memory) Push(topic string, m Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.topics[topic] = append(q.topics[topic], m)
	q.cond.Broadcast()
	return nil
}

// Pop implements Queue.
func (q *Memory) Pop(topic string, wait time.Duration) (Message, bool, error) {
	deadline := time.Now().Add(wait)
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return Message{}, false, ErrClosed
		}
		if ms := q.topics[topic]; len(ms) > 0 {
			m := ms[0]
			q.topics[topic] = ms[1:]
			return m, true, nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return Message{}, false, nil
		}
		// Wake periodically to honor the deadline without a timer per call.
		waker := time.AfterFunc(remain, q.cond.Broadcast)
		q.cond.Wait()
		waker.Stop()
	}
}

// Len implements Queue.
func (q *Memory) Len(topic string) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, ErrClosed
	}
	return len(q.topics[topic]), nil
}

// Close wakes all waiters and rejects further operations.
func (q *Memory) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
