// Package mq provides the message-queue substrate of the distributed
// simulation framework (Figure 3): the master pushes one message per subtask
// and each working server pops messages from the topic it listens to.
//
// Two implementations are provided: an in-memory queue for single-process
// clusters and tests, and a TCP server/client pair (net/rpc over gob) so
// masters and workers can run as separate OS processes, standing in for the
// production message-queue service.
package mq

import (
	"errors"
	"sync"
	"time"

	"hoyan/internal/telemetry"
)

// Message is one queue entry. Payload is opaque to the queue (the framework
// stores JSON-encoded subtask metadata).
type Message struct {
	ID      string
	Kind    string
	Payload []byte
}

// Queue is the interface both implementations satisfy.
type Queue interface {
	// Push appends a message to a topic.
	Push(topic string, m Message) error
	// Pop removes the oldest message from a topic, waiting up to wait for
	// one to arrive. ok is false on timeout.
	Pop(topic string, wait time.Duration) (m Message, ok bool, err error)
	// Len returns the number of queued messages in a topic.
	Len(topic string) (int, error)
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("mq: queue closed")

// Stats is a point-in-time copy of a queue's counters: the same
// StatsProvider shape the object store exposes, so the fleet binaries gather
// both through one seam.
type Stats struct {
	// Pushes counts accepted messages; Pops counts delivered messages (empty
	// poll timeouts are not pops). Depth is the number of messages currently
	// queued across all topics.
	Pushes int64 `json:"pushes"`
	Pops   int64 `json:"pops"`
	Depth  int64 `json:"depth"`
}

// StatsProvider is implemented by queues that track counters.
type StatsProvider interface {
	Stats() Stats
}

// Memory is an in-memory Queue. The zero value is not usable; call NewMemory.
// Counters are telemetry instruments (detached until Instrument binds them to
// a registry); Stats() stays as the compatibility view.
type Memory struct {
	mu     sync.Mutex
	cond   *sync.Cond
	topics map[string][]Message
	closed bool

	pushes *telemetry.Counter
	pops   *telemetry.Counter
	depth  *telemetry.Gauge
}

// NewMemory creates an empty in-memory queue.
func NewMemory() *Memory {
	m := &Memory{
		topics: make(map[string][]Message),
		pushes: &telemetry.Counter{},
		pops:   &telemetry.Counter{},
		depth:  &telemetry.Gauge{},
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Instrument re-binds the queue's counters to registered metrics in reg,
// carrying over counts accumulated so far. Safe to call while the queue is in
// use.
func (q *Memory) Instrument(reg *telemetry.Registry) {
	q.mu.Lock()
	defer q.mu.Unlock()
	pushes := reg.Counter("hoyan_mq_pushes_total", "messages accepted by the queue")
	pushes.Add(q.pushes.Value())
	q.pushes = pushes
	pops := reg.Counter("hoyan_mq_pops_total", "messages delivered by the queue")
	pops.Add(q.pops.Value())
	q.pops = pops
	depth := reg.Gauge("hoyan_mq_depth", "messages currently queued across all topics")
	depth.Set(float64(q.depthLocked()))
	q.depth = depth
}

func (q *Memory) depthLocked() int64 {
	var n int64
	for _, ms := range q.topics {
		n += int64(len(ms))
	}
	return n
}

// Stats implements StatsProvider.
func (q *Memory) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{Pushes: q.pushes.Value(), Pops: q.pops.Value(), Depth: q.depthLocked()}
}

// Push implements Queue.
func (q *Memory) Push(topic string, m Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.topics[topic] = append(q.topics[topic], m)
	q.pushes.Inc()
	q.depth.Add(1)
	q.cond.Broadcast()
	return nil
}

// Pop implements Queue.
func (q *Memory) Pop(topic string, wait time.Duration) (Message, bool, error) {
	deadline := time.Now().Add(wait)
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return Message{}, false, ErrClosed
		}
		if ms := q.topics[topic]; len(ms) > 0 {
			m := ms[0]
			q.topics[topic] = ms[1:]
			q.pops.Inc()
			q.depth.Add(-1)
			return m, true, nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return Message{}, false, nil
		}
		// Wake periodically to honor the deadline without a timer per call.
		waker := time.AfterFunc(remain, q.cond.Broadcast)
		q.cond.Wait()
		waker.Stop()
	}
}

// Len implements Queue.
func (q *Memory) Len(topic string) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, ErrClosed
	}
	return len(q.topics[topic]), nil
}

// Close wakes all waiters and rejects further operations.
func (q *Memory) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
