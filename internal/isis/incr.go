package isis

import (
	"hoyan/internal/netmodel"
	"hoyan/internal/par"
)

// Delta describes a topology change relative to the base SPF result: links
// whose Up flag flipped plus nodes that went down or came up. The topology
// passed to Recompute must already reflect the new state.
type Delta struct {
	// Links are the IDs of links whose Up state changed (either direction).
	Links []netmodel.LinkID
	// NodesDown / NodesUp are routers whose Up state flipped.
	NodesDown []string
	NodesUp   []string
}

// ReuseStats reports how much of the base result an incremental recompute
// could keep.
type ReuseStats struct {
	Sources    int // up sources in the new topology
	Reused     int // sources whose base per-source result was copied
	Recomputed int // sources re-run from scratch
}

// Diff compares one source's view between two results. distChanged holds
// destinations whose distance differs (including appearing or disappearing) —
// the only IGP input to BGP next-hop resolution. hopsChanged holds those
// whose ECMP first-hop set differs — the only IGP input to forwarding.
func Diff(base, cur *Result, src string) (distChanged, hopsChanged map[string]bool) {
	if base.idx != nil && cur.idx != nil {
		return diffIdx(base, cur, src)
	}
	bd, cd := base.distMap(src), cur.distMap(src)
	for x, v := range bd {
		if cv, ok := cd[x]; !ok || cv != v {
			if distChanged == nil {
				distChanged = make(map[string]bool)
			}
			distChanged[x] = true
		}
	}
	for x := range cd {
		if _, ok := bd[x]; !ok {
			if distChanged == nil {
				distChanged = make(map[string]bool)
			}
			distChanged[x] = true
		}
	}
	bh, ch := base.hopsMap(src), cur.hopsMap(src)
	for x, v := range bh {
		if !hopsEqual(ch[x], v) {
			if hopsChanged == nil {
				hopsChanged = make(map[string]bool)
			}
			hopsChanged[x] = true
		}
	}
	for x := range ch {
		if _, ok := bh[x]; !ok {
			if hopsChanged == nil {
				hopsChanged = make(map[string]bool)
			}
			hopsChanged[x] = true
		}
	}
	return distChanged, hopsChanged
}

func hopsEqual(a, b []FirstHop) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Recompute derives the SPF result of the changed topology from a base
// result, re-running Dijkstra only for sources whose shortest-path DAG the
// delta can touch and sharing the base per-source maps for everyone else
// (the Result accessors are read-only, so sharing is safe).
//
// The touched test is conservative but exact in the failure direction: a
// removed edge changes a source's distances or ECMP first-hop sets only if it
// was tight (dist[s][A] + cost(A→B) == dist[s][B] in either direction), and a
// restored edge only if it creates an equal-or-better path to one endpoint.
// Any node coming up falls back to a full recompute — new sources invalidate
// every DAG bound through them only rarely, and change plans that re-enable
// routers are not a hot path.
//
// It returns the new result, the set of touched sources (every source whose
// per-source maps were recomputed), and the reuse statistics.
func Recompute(topo *netmodel.Topology, base *Result, d Delta, opts Options) (*Result, map[string]bool, ReuseStats) {
	var srcs []string
	for _, n := range topo.Nodes() {
		if n.Up {
			srcs = append(srcs, n.Name)
		}
	}

	if base == nil || len(d.NodesUp) > 0 {
		full := Compute(topo, opts)
		touched := make(map[string]bool, len(srcs))
		for _, s := range srcs {
			touched[s] = true
		}
		return full, touched, ReuseStats{Sources: len(srcs), Recomputed: len(srcs)}
	}

	if !opts.Legacy && base.idx != nil {
		return recomputeIdx(topo, base, d, opts)
	}

	touched := make(map[string]bool)
	// A downed node touches every source that could reach it (their DAGs may
	// route through it, and its disappearance as a destination matters to
	// consumers either way).
	for _, x := range d.NodesDown {
		for s, dist := range base.dist {
			if _, ok := dist[x]; ok {
				touched[s] = true
			}
		}
	}
	for _, id := range d.Links {
		l := topo.Link(id)
		if l == nil {
			continue
		}
		cAB := l.DirCost(l.A, opts.UseTEMetric)
		cBA := l.DirCost(l.B, opts.UseTEMetric)
		for s, dist := range base.dist {
			if touched[s] {
				continue
			}
			dA, okA := dist[l.A]
			dB, okB := dist[l.B]
			if l.Up {
				// Link restored: it matters when it offers an equal-or-better
				// path to either endpoint (equal matters too — ECMP first-hop
				// sets grow on ties) or reaches a previously cut-off endpoint.
				if okA && (!okB || dA+cAB <= dB) {
					touched[s] = true
				} else if okB && (!okA || dB+cBA <= dA) {
					touched[s] = true
				}
			} else {
				// Link failed: only tight edges appear in any shortest-path
				// DAG; removing a slack edge changes nothing.
				if okA && okB && (dA+cAB == dB || dB+cBA == dA) {
					touched[s] = true
				}
			}
		}
	}

	r := &Result{
		dist: make(map[string]map[string]uint32, len(srcs)),
		hops: make(map[string]map[string][]FirstHop, len(srcs)),
	}
	var redo []string
	stats := ReuseStats{Sources: len(srcs)}
	for _, s := range srcs {
		if !touched[s] {
			if bd, ok := base.dist[s]; ok {
				r.dist[s] = bd
				r.hops[s] = base.hops[s]
				stats.Reused++
				continue
			}
			// Unknown to the base (shouldn't happen without NodesUp): treat
			// as touched.
			touched[s] = true
		}
		redo = append(redo, s)
	}
	type perSrc struct {
		dist map[string]uint32
		hops map[string][]FirstHop
	}
	slots := par.Map(opts.Parallelism, len(redo), func(i int) perSrc {
		if opts.ctxDone() {
			return perSrc{}
		}
		dist, hops := sssp(topo, redo[i], opts)
		return perSrc{dist: dist, hops: hops}
	})
	for i, s := range redo {
		r.dist[s] = slots[i].dist
		r.hops[s] = slots[i].hops
		stats.Recomputed++
	}
	return r, touched, stats
}
