package isis

import (
	"slices"

	"hoyan/internal/netmodel"
	"hoyan/internal/par"
)

// infCost is the unreachable sentinel in flat distance rows.
const infCost = ^uint32(0)

// computeIdx is Compute over the CSR topology index: per-source rows are flat
// []uint32 distances and [][]int32 first-hop edge-position sets instead of
// nested string maps. DevID order equals sorted-name order and CSR edge order
// equals Neighbors order, so the indexed run visits nodes and edges in
// exactly the same sequence as the string implementation and produces the
// same distances and first-hop sets.
func computeIdx(topo *netmodel.Topology, opts Options) *Result {
	ix := topo.Index()
	n := ix.NumDevices()
	var srcs []netmodel.DevID
	for i := 0; i < n; i++ {
		if ix.Node(netmodel.DevID(i)).Up {
			srcs = append(srcs, netmodel.DevID(i))
		}
	}
	type perSrc struct {
		dist []uint32
		hops [][]int32
	}
	slots := par.Map(opts.Parallelism, len(srcs), func(i int) perSrc {
		if opts.ctxDone() {
			return perSrc{}
		}
		dist, hops := ssspIdx(ix, srcs[i], opts)
		return perSrc{dist: dist, hops: hops}
	})
	r := &Result{idx: ix, fdist: make([][]uint32, n), fhops: make([][][]int32, n)}
	for i, sid := range srcs {
		r.fdist[sid] = slots[i].dist
		r.fhops[sid] = slots[i].hops
	}
	return r
}

// ipqItem / ipq is a hand-rolled binary heap over dense IDs; container/heap
// boxes every push through an interface, which shows up at WAN scale.
// Tie-break by DevID == tie-break by device name.
type ipqItem struct {
	dev  netmodel.DevID
	dist uint32
}

type ipq []ipqItem

func (q ipq) less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].dev < q[j].dev
}

func (q *ipq) push(it ipqItem) {
	*q = append(*q, it)
	i := len(*q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		(*q)[i], (*q)[p] = (*q)[p], (*q)[i]
		i = p
	}
}

func (q *ipq) pop() ipqItem {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	*q = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && (*q).less(l, s) {
			s = l
		}
		if r < n && (*q).less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	return top
}

// ssspIdx is single-source shortest paths with ECMP first-hop tracking over
// the CSR index. First hops are stored as CSR edge positions of the source's
// own adjacency row, kept sorted ascending at the end — ascending position
// order is exactly the (neighbor name, link string) order of the string
// implementation's sortHops.
func ssspIdx(ix *netmodel.TopoIndex, src netmodel.DevID, opts Options) ([]uint32, [][]int32) {
	n := ix.NumDevices()
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = infCost
	}
	hops := make([][]int32, n)
	done := make([]bool, n)

	dist[src] = 0
	q := ipq{{dev: src}}
	for len(q) > 0 {
		it := q.pop()
		if done[it.dev] || it.dist != dist[it.dev] {
			continue
		}
		done[it.dev] = true
		lo, hi := ix.EdgeRange(it.dev)
		for pos := lo; pos < hi; pos++ {
			if !ix.EdgeUp(pos) {
				continue
			}
			nb := ix.EdgeDev(pos)
			nd := it.dist + ix.EdgeCost(pos, opts.UseTEMetric)
			old := dist[nb]
			switch {
			case nd < old: // infCost is the max uint32, so "unseen" folds in
				dist[nb] = nd
				hops[nb] = hopsViaIdx(src, it.dev, pos, hops, nil)
				q.push(ipqItem{dev: nb, dist: nd})
			case nd == old && old != infCost:
				hops[nb] = hopsViaIdx(src, it.dev, pos, hops, hops[nb])
			}
		}
	}
	for d := range hops {
		slices.Sort(hops[d])
	}
	return dist, hops
}

// hopsViaIdx merges the first hops for reaching a neighbor through `via`
// (edge position pos when via is the source itself, otherwise via's own
// first-hop set) into cur, deduplicating with a linear scan — hop sets are
// tiny, so this beats a map.
func hopsViaIdx(src, via netmodel.DevID, pos int32, hops [][]int32, cur []int32) []int32 {
	if via == src {
		if cur == nil {
			return []int32{pos}
		}
		if !slices.Contains(cur, pos) {
			cur = append(cur, pos)
		}
		return cur
	}
	if cur == nil {
		return append([]int32(nil), hops[via]...)
	}
	for _, p := range hops[via] {
		if !slices.Contains(cur, p) {
			cur = append(cur, p)
		}
	}
	return cur
}

// EdgeIndex returns the topology index an indexed result was computed
// against, or nil for a string-keyed result.
func (r *Result) EdgeIndex() *netmodel.TopoIndex { return r.idx }

// CostID is Cost over dense IDs, for hot paths that already hold them.
func (r *Result) CostID(src, dst netmodel.DevID) (uint32, bool) {
	if src == dst {
		return 0, true
	}
	row := r.fdist[src]
	if row == nil {
		return 0, false
	}
	d := row[dst]
	return d, d != infCost
}

// FirstHopEdges returns the ECMP first hops from src toward dst as CSR edge
// positions of src's adjacency row, sorted ascending (nil when unreachable or
// src == dst). The slice is shared; callers must not modify it.
func (r *Result) FirstHopEdges(src, dst netmodel.DevID) []int32 {
	rows := r.fhops[src]
	if rows == nil {
		return nil
	}
	return rows[dst]
}

// distMap materializes one source's distance map. For a string-keyed result
// this is the internal map itself (zero cost); for an indexed result it is
// built on demand — only mixed-representation diffs pay for it.
func (r *Result) distMap(src string) map[string]uint32 {
	if r.idx == nil {
		return r.dist[src]
	}
	sid, ok := r.idx.DevID(src)
	if !ok || r.fdist[sid] == nil {
		return nil
	}
	m := make(map[string]uint32)
	for did, v := range r.fdist[sid] {
		if v != infCost {
			m[r.idx.DevName(netmodel.DevID(did))] = v
		}
	}
	return m
}

// hopsMap materializes one source's first-hop map; see distMap.
func (r *Result) hopsMap(src string) map[string][]FirstHop {
	if r.idx == nil {
		return r.hops[src]
	}
	sid, ok := r.idx.DevID(src)
	if !ok || r.fhops[sid] == nil {
		return nil
	}
	m := make(map[string][]FirstHop)
	for did, ps := range r.fhops[sid] {
		if len(ps) > 0 {
			m[r.idx.DevName(netmodel.DevID(did))] = r.materializeHops(ps)
		}
	}
	return m
}

func (r *Result) materializeHops(ps []int32) []FirstHop {
	out := make([]FirstHop, len(ps))
	for i, p := range ps {
		out[i] = FirstHop{
			Device: r.idx.DevName(r.idx.EdgeDev(p)),
			Link:   r.idx.LinkIDAt(r.idx.EdgeLinkIdx(p)),
		}
	}
	return out
}

// routesIdx is Routes over the index: destinations iterate in ascending
// DevID order, which is sorted-name order, and next-hop addresses come
// straight off the first-hop edge's link pointer.
func (r *Result) routesIdx(src string) []netmodel.Route {
	ix := r.idx
	sid, ok := ix.DevID(src)
	if !ok || r.fdist[sid] == nil {
		return nil
	}
	var out []netmodel.Route
	row := r.fdist[sid]
	for did := 0; did < ix.NumDevices(); did++ {
		if netmodel.DevID(did) == sid || row[did] == infCost {
			continue
		}
		dn := ix.Node(netmodel.DevID(did))
		if !dn.Loopback.IsValid() {
			continue
		}
		bits := 32
		if dn.Loopback.Is6() {
			bits = 128
		}
		p, err := dn.Loopback.Prefix(bits)
		if err != nil {
			continue
		}
		for _, pos := range r.fhops[sid][did] {
			l := ix.EdgeLink(pos)
			nh := l.AAddr
			if ix.EdgeFromA(pos) {
				nh = l.BAddr
			}
			out = append(out, netmodel.Route{
				Device:     src,
				VRF:        netmodel.DefaultVRF,
				Prefix:     p,
				Protocol:   netmodel.ProtoISIS,
				NextHop:    nh,
				IGPCost:    row[did],
				Preference: 15,
				RouteType:  netmodel.RouteBest,
				Peer:       ix.DevName(ix.EdgeDev(pos)),
				Source:     dn.Name,
			})
		}
	}
	return out
}

// diffIdx is Diff over two indexed results. The indexes may be distinct
// instances (forked topologies), but Up-flag deltas never change the device
// or link sets, so dense IDs and CSR edge positions are directly comparable.
func diffIdx(base, cur *Result, src string) (distChanged, hopsChanged map[string]bool) {
	nameOf := func(i int) string {
		if i < cur.idx.NumDevices() {
			return cur.idx.DevName(netmodel.DevID(i))
		}
		return base.idx.DevName(netmodel.DevID(i))
	}
	var brow, crow []uint32
	if sid, ok := base.idx.DevID(src); ok {
		brow = base.fdist[sid]
	}
	if sid, ok := cur.idx.DevID(src); ok {
		crow = cur.fdist[sid]
	}
	n := len(brow)
	if len(crow) > n {
		n = len(crow)
	}
	at := func(row []uint32, i int) uint32 {
		if i < len(row) {
			return row[i]
		}
		return infCost
	}
	for i := 0; i < n; i++ {
		if at(brow, i) != at(crow, i) {
			if distChanged == nil {
				distChanged = make(map[string]bool)
			}
			distChanged[nameOf(i)] = true
		}
	}
	var bh, ch [][]int32
	if sid, ok := base.idx.DevID(src); ok {
		bh = base.fhops[sid]
	}
	if sid, ok := cur.idx.DevID(src); ok {
		ch = cur.fhops[sid]
	}
	n = len(bh)
	if len(ch) > n {
		n = len(ch)
	}
	hat := func(rows [][]int32, i int) []int32 {
		if i < len(rows) {
			return rows[i]
		}
		return nil
	}
	for i := 0; i < n; i++ {
		if !slices.Equal(hat(bh, i), hat(ch, i)) {
			if hopsChanged == nil {
				hopsChanged = make(map[string]bool)
			}
			hopsChanged[nameOf(i)] = true
		}
	}
	return distChanged, hopsChanged
}

// recomputeIdx is Recompute over indexed results: the touched tests read the
// flat distance rows directly and untouched sources share their base rows.
func recomputeIdx(topo *netmodel.Topology, base *Result, d Delta, opts Options) (*Result, map[string]bool, ReuseStats) {
	ix := topo.Index()
	n := ix.NumDevices()
	var srcs []netmodel.DevID
	for i := 0; i < n; i++ {
		if ix.Node(netmodel.DevID(i)).Up {
			srcs = append(srcs, netmodel.DevID(i))
		}
	}

	touched := make(map[netmodel.DevID]bool)
	// A downed node touches every source that could reach it.
	for _, x := range d.NodesDown {
		xid, ok := ix.DevID(x)
		if !ok {
			continue
		}
		for s := 0; s < len(base.fdist); s++ {
			row := base.fdist[s]
			if row != nil && int(xid) < len(row) && row[xid] != infCost {
				touched[netmodel.DevID(s)] = true
			}
		}
	}
	for _, id := range d.Links {
		l := topo.Link(id)
		if l == nil {
			continue
		}
		aid, aok := ix.DevID(l.A)
		bid, bok := ix.DevID(l.B)
		if !aok || !bok {
			continue
		}
		cAB := l.DirCost(l.A, opts.UseTEMetric)
		cBA := l.DirCost(l.B, opts.UseTEMetric)
		for s := 0; s < len(base.fdist); s++ {
			sid := netmodel.DevID(s)
			row := base.fdist[s]
			if row == nil || touched[sid] {
				continue
			}
			dA, dB := row[aid], row[bid]
			okA, okB := dA != infCost, dB != infCost
			if l.Up {
				// Link restored: equal-or-better path to either endpoint, or
				// a previously cut-off endpoint becomes reachable.
				if okA && (!okB || dA+cAB <= dB) {
					touched[sid] = true
				} else if okB && (!okA || dB+cBA <= dA) {
					touched[sid] = true
				}
			} else if okA && okB && (dA+cAB == dB || dB+cBA == dA) {
				// Link failed: only tight edges appear in any DAG.
				touched[sid] = true
			}
		}
	}

	r := &Result{idx: ix, fdist: make([][]uint32, n), fhops: make([][][]int32, n)}
	var redo []netmodel.DevID
	stats := ReuseStats{Sources: len(srcs)}
	for _, sid := range srcs {
		if !touched[sid] {
			if int(sid) < len(base.fdist) && base.fdist[sid] != nil {
				r.fdist[sid] = base.fdist[sid]
				r.fhops[sid] = base.fhops[sid]
				stats.Reused++
				continue
			}
			touched[sid] = true
		}
		redo = append(redo, sid)
	}
	// The returned touched set mirrors the string implementation: everything
	// the delta tests flagged (including sources that are themselves down
	// now) plus up sources absent from the base.
	touchedNames := make(map[string]bool, len(touched))
	for sid := range touched {
		if int(sid) < n {
			touchedNames[ix.DevName(sid)] = true
		}
	}
	type perSrc struct {
		dist []uint32
		hops [][]int32
	}
	slots := par.Map(opts.Parallelism, len(redo), func(i int) perSrc {
		if opts.ctxDone() {
			return perSrc{}
		}
		dist, hops := ssspIdx(ix, redo[i], opts)
		return perSrc{dist: dist, hops: hops}
	})
	for i, sid := range redo {
		r.fdist[sid] = slots[i].dist
		r.fhops[sid] = slots[i].hops
		stats.Recomputed++
	}
	return r, touchedNames, stats
}
