package isis

import (
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"

	"hoyan/internal/netmodel"
)

// diamond builds:
//
//	   A
//	10/ \10
//	 B    C
//	10\ /10
//	   D
//
// with an extra expensive direct A-D link of cost 100.
func diamond() *netmodel.Topology {
	topo := netmodel.NewTopology()
	lo := map[string]string{"A": "1.1.1.1", "B": "2.2.2.2", "C": "3.3.3.3", "D": "4.4.4.4"}
	for n, l := range lo {
		topo.AddNode(netmodel.Node{Name: n, Loopback: netip.MustParseAddr(l)})
	}
	add := func(a, b string, cost uint32, aAddr, bAddr string) {
		topo.AddLink(netmodel.Link{
			A: a, B: b, AIface: "to-" + b, BIface: "to-" + a,
			AAddr: netip.MustParseAddr(aAddr), BAddr: netip.MustParseAddr(bAddr),
			CostAB: cost, CostBA: cost, Bandwidth: 1e9,
		})
	}
	add("A", "B", 10, "10.0.1.1", "10.0.1.2")
	add("A", "C", 10, "10.0.2.1", "10.0.2.2")
	add("B", "D", 10, "10.0.3.1", "10.0.3.2")
	add("C", "D", 10, "10.0.4.1", "10.0.4.2")
	add("A", "D", 100, "10.0.5.1", "10.0.5.2")
	return topo
}

func TestSPFCostsAndECMP(t *testing.T) {
	r := Compute(diamond(), Options{})
	if c, ok := r.Cost("A", "D"); !ok || c != 20 {
		t.Errorf("Cost(A,D) = %d,%v want 20", c, ok)
	}
	if c, ok := r.Cost("A", "A"); !ok || c != 0 {
		t.Errorf("Cost(A,A) = %d,%v", c, ok)
	}
	fhs := r.FirstHops("A", "D")
	if len(fhs) != 2 || fhs[0].Device != "B" || fhs[1].Device != "C" {
		t.Errorf("FirstHops(A,D) = %v, want ECMP via B and C", fhs)
	}
	if fhs := r.FirstHops("A", "B"); len(fhs) != 1 || fhs[0].Device != "B" {
		t.Errorf("FirstHops(A,B) = %v", fhs)
	}
}

func TestSPFLinkFailure(t *testing.T) {
	topo := diamond()
	topo.SetLinkUp(netmodel.LinkID{A: "A", B: "B", AIface: "to-B", BIface: "to-A"}, false)
	r := Compute(topo, Options{})
	fhs := r.FirstHops("A", "D")
	if len(fhs) != 1 || fhs[0].Device != "C" {
		t.Errorf("after A-B failure FirstHops(A,D) = %v", fhs)
	}
	if c, _ := r.Cost("A", "B"); c != 30 {
		t.Errorf("Cost(A,B) via C,D = %d want 30", c)
	}
}

func TestSPFNodeFailurePartition(t *testing.T) {
	topo := diamond()
	topo.SetNodeUp("B", false)
	topo.SetNodeUp("C", false)
	topo.SetLinkUp(netmodel.LinkID{A: "A", B: "D", AIface: "to-D", BIface: "to-A"}, false)
	r := Compute(topo, Options{})
	if r.Reachable("A", "D") {
		t.Error("A must not reach D after partition")
	}
	if _, ok := r.Cost("A", "D"); ok {
		t.Error("Cost must report unreachable")
	}
	if r.FirstHops("A", "D") != nil {
		t.Error("no first hops when unreachable")
	}
}

func TestTEMetric(t *testing.T) {
	topo := diamond()
	// Give the B branch a huge TE metric; plain SPF still sees ECMP,
	// TE-aware SPF prefers the C branch.
	l := topo.Link(netmodel.LinkID{A: "A", B: "B", AIface: "to-B", BIface: "to-A"})
	l.TEAB = 1000
	plain := Compute(topo, Options{})
	if fhs := plain.FirstHops("A", "D"); len(fhs) != 2 {
		t.Errorf("plain SPF should keep ECMP, got %v", fhs)
	}
	te := Compute(topo, Options{UseTEMetric: true})
	fhs := te.FirstHops("A", "D")
	if len(fhs) != 1 || fhs[0].Device != "C" {
		t.Errorf("TE SPF FirstHops(A,D) = %v, want only C", fhs)
	}
	if c, _ := te.Cost("A", "B"); c != 30 {
		t.Errorf("TE Cost(A,B) = %d, want 30 via C,D", c)
	}
}

func TestPath(t *testing.T) {
	r := Compute(diamond(), Options{})
	p := r.Path("A", "D")
	if len(p) != 3 || p[0] != "A" || p[2] != "D" {
		t.Errorf("Path(A,D) = %v", p)
	}
	if p[1] != "B" { // lexically first ECMP branch
		t.Errorf("Path should take lexically first branch, got %v", p)
	}
	if p := r.Path("A", "A"); len(p) != 1 {
		t.Errorf("Path(A,A) = %v", p)
	}
}

func TestRoutes(t *testing.T) {
	topo := diamond()
	r := Compute(topo, Options{})
	routes := r.Routes(topo, "A")
	// 3 destinations, D has 2 ECMP rows -> 4 rows.
	if len(routes) != 4 {
		t.Fatalf("len(routes) = %d want 4: %v", len(routes), routes)
	}
	byPrefix := map[string][]netmodel.Route{}
	for _, rt := range routes {
		if rt.Protocol != netmodel.ProtoISIS || rt.RouteType != netmodel.RouteBest {
			t.Errorf("bad route %v", rt)
		}
		byPrefix[rt.Prefix.String()] = append(byPrefix[rt.Prefix.String()], rt)
	}
	d := byPrefix["4.4.4.4/32"]
	if len(d) != 2 {
		t.Fatalf("ECMP rows for D = %d", len(d))
	}
	// Next hops are the neighbor-side interface addresses.
	nhs := map[string]bool{d[0].NextHop.String(): true, d[1].NextHop.String(): true}
	if !nhs["10.0.1.2"] || !nhs["10.0.2.2"] {
		t.Errorf("next hops = %v", nhs)
	}
	if d[0].IGPCost != 20 {
		t.Errorf("IGPCost = %d", d[0].IGPCost)
	}
}

func TestSPFTriangleInequalityProperty(t *testing.T) {
	topo := diamond()
	r := Compute(topo, Options{})
	names := topo.NodeNames()
	f := func(i, j, k uint8) bool {
		a, b, c := names[int(i)%len(names)], names[int(j)%len(names)], names[int(k)%len(names)]
		ab, ok1 := r.Cost(a, b)
		bc, ok2 := r.Cost(b, c)
		ac, ok3 := r.Cost(a, c)
		if !ok1 || !ok2 || !ok3 {
			return true
		}
		return ac <= ab+bc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSPFSymmetricCosts(t *testing.T) {
	// With symmetric link costs, distance must be symmetric.
	topo := diamond()
	r := Compute(topo, Options{})
	for _, a := range topo.NodeNames() {
		for _, b := range topo.NodeNames() {
			ca, _ := r.Cost(a, b)
			cb, _ := r.Cost(b, a)
			if ca != cb {
				t.Errorf("asymmetric: %s->%s=%d %s->%s=%d", a, b, ca, b, a, cb)
			}
		}
	}
}

func TestComputeParallelMatchesSequential(t *testing.T) {
	topo := diamond()
	seq := Compute(topo, Options{Parallelism: 1})
	pll := Compute(topo, Options{Parallelism: 8})
	if !reflect.DeepEqual(seq.dist, pll.dist) {
		t.Error("parallel SPF distances diverged from sequential")
	}
	if !reflect.DeepEqual(seq.hops, pll.hops) {
		t.Error("parallel SPF first hops diverged from sequential")
	}
}
