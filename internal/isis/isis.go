// Package isis simulates the WAN's link-state IGP: shortest-path-first
// computation with equal-cost multipath over the physical topology, including
// the IS-IS traffic-engineering metric extension (RFC 5305).
//
// The SPF result feeds three consumers: BGP best-path selection (IGP cost to
// the next hop), recursive next-hop resolution in the FIB, and SR tunnel
// path computation.
package isis

import (
	"container/heap"
	"context"
	"net/netip"
	"slices"
	"strings"

	"hoyan/internal/netmodel"
	"hoyan/internal/par"
)

// Options tunes the SPF computation.
type Options struct {
	// UseTEMetric selects the IS-IS TE metric where configured. Hoyan did
	// not model this feature until March 2023 (§5.3); the accuracy campaign
	// injects that flaw by flipping this option off in the model under test.
	UseTEMetric bool

	// Parallelism bounds the worker pool running per-source Dijkstra
	// (par conventions: 0 = GOMAXPROCS, 1 = sequential).
	Parallelism int

	// Legacy selects the original string-keyed implementation instead of the
	// CSR-indexed one. The two produce identical results; the legacy path is
	// kept as the reference for speedup measurement and equivalence tests.
	Legacy bool

	// Ctx, when non-nil, is polled before each per-source Dijkstra; once it
	// is done the remaining sources return empty rows and the (incomplete)
	// result must be discarded by the caller.
	Ctx context.Context
}

// ctxDone reports whether opts carries a cancelled context.
func (o Options) ctxDone() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

// FirstHop is one equal-cost first hop from a source toward a destination.
type FirstHop struct {
	Device string          // neighbor device
	Link   netmodel.LinkID // link from the source to Device
}

// Result holds the all-pairs SPF outcome in one of two representations: the
// original nested string maps (Options.Legacy) or flat per-DevID rows over
// the topology's CSR index. The string accessors work on either; the *ID
// accessors (CostID, FirstHopEdges) require the indexed form.
type Result struct {
	// string-keyed representation (idx == nil)
	dist map[string]map[string]uint32
	hops map[string]map[string][]FirstHop

	// indexed representation (idx != nil): fdist[src][dst] is the distance
	// (infCost = unreachable, nil row = source down/unknown) and
	// fhops[src][dst] the sorted CSR edge positions of the ECMP first hops.
	idx   *netmodel.TopoIndex
	fdist [][]uint32
	fhops [][][]int32
}

// Compute runs Dijkstra from every up node of the topology. Sources are
// independent, so they fan out over Options.Parallelism workers; each worker
// writes only its own pre-sized slot and the source→result maps are filled
// sequentially afterwards, so the outcome is identical at any parallelism.
func Compute(topo *netmodel.Topology, opts Options) *Result {
	if !opts.Legacy {
		return computeIdx(topo, opts)
	}
	var srcs []string
	for _, n := range topo.Nodes() {
		if n.Up {
			srcs = append(srcs, n.Name)
		}
	}
	type perSrc struct {
		dist map[string]uint32
		hops map[string][]FirstHop
	}
	slots := par.Map(opts.Parallelism, len(srcs), func(i int) perSrc {
		if opts.ctxDone() {
			return perSrc{}
		}
		dist, hops := sssp(topo, srcs[i], opts)
		return perSrc{dist: dist, hops: hops}
	})
	r := &Result{
		dist: make(map[string]map[string]uint32, len(srcs)),
		hops: make(map[string]map[string][]FirstHop, len(srcs)),
	}
	for i, src := range srcs {
		r.dist[src] = slots[i].dist
		r.hops[src] = slots[i].hops
	}
	return r
}

type pqItem struct {
	device string
	dist   uint32
}

type pq []pqItem

func (q pq) Len() int      { return len(q) }
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].device < q[j].device
}
func (q *pq) Push(x any) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// sssp is single-source shortest paths with ECMP first-hop tracking.
func sssp(topo *netmodel.Topology, src string, opts Options) (map[string]uint32, map[string][]FirstHop) {
	dist := map[string]uint32{src: 0}
	hops := map[string][]FirstHop{}
	done := map[string]bool{}

	q := &pq{{device: src}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.device] || it.dist != dist[it.device] {
			continue
		}
		done[it.device] = true
		for _, nb := range topo.Neighbors(it.device) {
			cost := nb.Link.DirCost(it.device, opts.UseTEMetric)
			nd := it.dist + cost
			old, seen := dist[nb.Device]
			switch {
			case !seen || nd < old:
				dist[nb.Device] = nd
				hops[nb.Device] = firstHopsVia(src, it.device, nb, hops)
				heap.Push(q, pqItem{device: nb.Device, dist: nd})
			case nd == old:
				hops[nb.Device] = mergeHops(hops[nb.Device], firstHopsVia(src, it.device, nb, hops))
			}
		}
	}
	for d := range hops {
		sortHops(hops[d])
	}
	return dist, hops
}

// firstHopsVia returns the first-hop set for reaching nb.Device through
// intermediate device via (which may be the source itself).
func firstHopsVia(src, via string, nb netmodel.Neighbor, hops map[string][]FirstHop) []FirstHop {
	if via == src {
		return []FirstHop{{Device: nb.Device, Link: nb.Link.ID()}}
	}
	return append([]FirstHop(nil), hops[via]...)
}

func mergeHops(a, b []FirstHop) []FirstHop {
	seen := make(map[FirstHop]bool, len(a))
	for _, h := range a {
		seen[h] = true
	}
	for _, h := range b {
		if !seen[h] {
			a = append(a, h)
			seen[h] = true
		}
	}
	return a
}

func sortHops(hs []FirstHop) {
	slices.SortFunc(hs, func(a, b FirstHop) int {
		if a.Device != b.Device {
			return strings.Compare(a.Device, b.Device)
		}
		return strings.Compare(a.Link.String(), b.Link.String())
	})
}

// Cost returns the IGP metric from src to dst; ok is false when dst is
// unreachable.
func (r *Result) Cost(src, dst string) (uint32, bool) {
	if src == dst {
		return 0, true
	}
	if r.idx != nil {
		sid, ok := r.idx.DevID(src)
		if !ok {
			return 0, false
		}
		did, ok := r.idx.DevID(dst)
		if !ok {
			return 0, false
		}
		return r.CostID(sid, did)
	}
	d, ok := r.dist[src][dst]
	return d, ok
}

// FirstHops returns the ECMP first hops from src toward dst (nil when
// unreachable or src == dst).
func (r *Result) FirstHops(src, dst string) []FirstHop {
	if r.idx != nil {
		sid, ok := r.idx.DevID(src)
		if !ok {
			return nil
		}
		did, ok := r.idx.DevID(dst)
		if !ok {
			return nil
		}
		ps := r.FirstHopEdges(sid, did)
		if len(ps) == 0 {
			return nil
		}
		return r.materializeHops(ps)
	}
	return r.hops[src][dst]
}

// Reachable reports whether dst is reachable from src.
func (r *Result) Reachable(src, dst string) bool {
	_, ok := r.Cost(src, dst)
	return ok
}

// Path returns one concrete shortest path from src to dst as a hop list
// (device names), choosing the lexically first ECMP branch at each step.
// Used by SR tunnel materialization and diagnosis graphs.
func (r *Result) Path(src, dst string) []string {
	if src == dst {
		return []string{src}
	}
	if !r.Reachable(src, dst) {
		return nil
	}
	path := []string{src}
	cur := src
	for cur != dst {
		fhs := r.FirstHops(cur, dst)
		if len(fhs) == 0 {
			return nil
		}
		cur = fhs[0].Device
		path = append(path, cur)
		bound := len(r.dist)
		if r.idx != nil {
			bound = r.idx.NumDevices()
		}
		if len(path) > bound+1 {
			return nil // defensive: must not happen on a consistent result
		}
	}
	return path
}

// Routes materializes IS-IS RIB entries on device src: one route per remote
// loopback, with one row per ECMP first hop, mirroring how the production
// system installs IGP routes alongside BGP ones.
func (r *Result) Routes(topo *netmodel.Topology, src string) []netmodel.Route {
	var out []netmodel.Route
	node := topo.Node(src)
	if node == nil {
		return nil
	}
	if r.idx != nil {
		return r.routesIdx(src)
	}
	dsts := make([]string, 0, len(r.dist[src]))
	for d := range r.dist[src] {
		if d != src {
			dsts = append(dsts, d)
		}
	}
	slices.Sort(dsts)
	for _, d := range dsts {
		dn := topo.Node(d)
		if dn == nil || !dn.Loopback.IsValid() {
			continue
		}
		bits := 32
		if dn.Loopback.Is6() {
			bits = 128
		}
		p, err := dn.Loopback.Prefix(bits)
		if err != nil {
			continue
		}
		cost := r.dist[src][d]
		for _, fh := range r.FirstHops(src, d) {
			out = append(out, netmodel.Route{
				Device:     src,
				VRF:        netmodel.DefaultVRF,
				Prefix:     p,
				Protocol:   netmodel.ProtoISIS,
				NextHop:    neighborAddr(topo, fh, src),
				IGPCost:    cost,
				Preference: 15,
				RouteType:  netmodel.RouteBest,
				Peer:       fh.Device,
				Source:     d,
			})
		}
	}
	return out
}

// neighborAddr returns the neighbor-side interface address of the first hop
// (the conventional IGP next-hop address).
func neighborAddr(topo *netmodel.Topology, fh FirstHop, src string) (nh netip.Addr) {
	l := topo.Link(fh.Link)
	if l == nil {
		return nh
	}
	if l.A == src {
		return l.BAddr
	}
	return l.AAddr
}
