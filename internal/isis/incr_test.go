package isis

import (
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"

	"hoyan/internal/netmodel"
)

// randomTopo builds a seeded random connected topology with asymmetric costs
// and a few parallel links.
func randomTopo(rng *rand.Rand, n int) *netmodel.Topology {
	topo := netmodel.NewTopology()
	for i := 0; i < n; i++ {
		topo.AddNode(netmodel.Node{
			Name:     fmt.Sprintf("r%02d", i),
			Loopback: netip.AddrFrom4([4]byte{10, 255, byte(i), 1}),
		})
	}
	link := 0
	addLink := func(a, b int) {
		topo.AddLink(netmodel.Link{
			A: fmt.Sprintf("r%02d", a), B: fmt.Sprintf("r%02d", b),
			AIface: fmt.Sprintf("eth%d", link), BIface: fmt.Sprintf("eth%d", link),
			CostAB: uint32(1 + rng.Intn(9)), CostBA: uint32(1 + rng.Intn(9)),
		})
		link++
	}
	// Ring for connectivity, then random chords.
	for i := 0; i < n; i++ {
		addLink(i, (i+1)%n)
	}
	for i := 0; i < n; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			addLink(a, b)
		}
	}
	return topo
}

// assertSame compares an incremental result against a full recompute over
// every (source, destination) pair, including ECMP first-hop sets.
func assertSame(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.dist, want.dist) {
		t.Fatalf("%s: distances differ", label)
	}
	if !reflect.DeepEqual(got.hops, want.hops) {
		t.Fatalf("%s: first-hop sets differ", label)
	}
}

func TestRecomputeSingleLinkFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	topo := randomTopo(rng, 16)
	base := Compute(topo, Options{})
	for _, l := range topo.Links() {
		id := l.ID()
		topo.SetLinkUp(id, false)
		want := Compute(topo, Options{})
		got, touched, stats := Recompute(topo, base, Delta{Links: []netmodel.LinkID{id}}, Options{})
		assertSame(t, "down "+id.String(), got, want)
		if stats.Reused+stats.Recomputed != stats.Sources {
			t.Fatalf("stats do not add up: %+v", stats)
		}
		if len(touched) != stats.Recomputed {
			t.Fatalf("touched=%d recomputed=%d", len(touched), stats.Recomputed)
		}
		topo.SetLinkUp(id, true)
	}
}

func TestRecomputeLinkRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	topo := randomTopo(rng, 12)
	ids := []netmodel.LinkID{topo.Links()[3].ID(), topo.Links()[9].ID()}
	for _, id := range ids {
		topo.SetLinkUp(id, false)
	}
	base := Compute(topo, Options{})
	topo.SetLinkUp(ids[0], true)
	want := Compute(topo, Options{})
	got, _, _ := Recompute(topo, base, Delta{Links: []netmodel.LinkID{ids[0]}}, Options{})
	assertSame(t, "restore", got, want)
}

func TestRecomputeNodeFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	topo := randomTopo(rng, 14)
	base := Compute(topo, Options{})
	for _, name := range []string{"r03", "r07", "r13"} {
		topo.SetNodeUp(name, false)
		want := Compute(topo, Options{})
		got, _, _ := Recompute(topo, base, Delta{NodesDown: []string{name}}, Options{})
		assertSame(t, "node down "+name, got, want)
		topo.SetNodeUp(name, true)
	}
}

func TestRecomputeNodeUpFullFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	topo := randomTopo(rng, 10)
	topo.SetNodeUp("r05", false)
	base := Compute(topo, Options{})
	topo.SetNodeUp("r05", true)
	want := Compute(topo, Options{})
	got, touched, stats := Recompute(topo, base, Delta{NodesUp: []string{"r05"}}, Options{})
	assertSame(t, "node up", got, want)
	if stats.Reused != 0 {
		t.Errorf("node-up must recompute everything, reused %d", stats.Reused)
	}
	if len(touched) != stats.Sources {
		t.Errorf("all sources must be touched on node-up")
	}
}

func TestRecomputeRandomizedMultiDeltas(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	topo := randomTopo(rng, 20)
	base := Compute(topo, Options{})
	links := topo.Links()
	for trial := 0; trial < 25; trial++ {
		var d Delta
		nl := 1 + rng.Intn(3)
		flipped := map[netmodel.LinkID]bool{}
		for j := 0; j < nl; j++ {
			id := links[rng.Intn(len(links))].ID()
			if flipped[id] {
				continue
			}
			flipped[id] = true
			topo.SetLinkUp(id, false)
			d.Links = append(d.Links, id)
		}
		if rng.Intn(2) == 0 {
			name := fmt.Sprintf("r%02d", rng.Intn(20))
			topo.SetNodeUp(name, false)
			d.NodesDown = append(d.NodesDown, name)
		}
		want := Compute(topo, Options{})
		got, _, _ := Recompute(topo, base, d, Options{})
		assertSame(t, fmt.Sprintf("trial %d", trial), got, want)
		for id := range flipped {
			topo.SetLinkUp(id, true)
		}
		for _, n := range d.NodesDown {
			topo.SetNodeUp(n, true)
		}
	}
}

// TestRecomputeReusesUntouchedSources pins the perf property: a leaf link
// failure must not touch sources whose DAGs never used it.
func TestRecomputeReusesUntouchedSources(t *testing.T) {
	topo := netmodel.NewTopology()
	for _, n := range []string{"a", "b", "c", "d"} {
		topo.AddNode(netmodel.Node{Name: n})
	}
	add := func(a, b string, cost uint32) netmodel.LinkID {
		l := topo.AddLink(netmodel.Link{A: a, B: b, AIface: a + b, BIface: b + a, CostAB: cost, CostBA: cost})
		return l.ID()
	}
	// Chain a-b-c-d plus an expensive bypass a-d that no shortest path uses.
	add("a", "b", 1)
	add("b", "c", 1)
	add("c", "d", 1)
	bypass := add("a", "d", 100)
	base := Compute(topo, Options{})
	topo.SetLinkUp(bypass, false)
	want := Compute(topo, Options{})
	got, touched, stats := Recompute(topo, base, Delta{Links: []netmodel.LinkID{bypass}}, Options{})
	assertSame(t, "slack edge", got, want)
	if len(touched) != 0 || stats.Reused != 4 {
		t.Errorf("slack-edge failure must touch nothing: touched=%v stats=%+v", touched, stats)
	}
}
