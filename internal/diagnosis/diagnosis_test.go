package diagnosis

import (
	"strings"
	"testing"

	"hoyan/internal/core"
	"hoyan/internal/gen"
	"hoyan/internal/monitor"
	"hoyan/internal/netmodel"
	"hoyan/internal/vsb"
)

func TestAccurateModelProducesCleanReport(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	f := &Framework{Net: out.Net, Inputs: out.Inputs, Flows: out.Flows}
	rep := f.Run()
	if !rep.Accurate {
		t.Fatalf("faithful model must be accurate:\n%s", rep.Summary())
	}
}

func TestMonitoringProjectionHidesLocalAttributes(t *testing.T) {
	// Weight and ECMP siblings are invisible through session-based
	// collection, so a weight-only model flaw is NOT caught by monitoring
	// alone — but IS caught by the live-show path (§5.1's hybrid approach).
	p := BuildProbe()
	flawed := vsb.Defaults()
	flawed["alpha"] = vsb.MutRedistWeight.Apply(flawed["alpha"])
	flawed["beta"] = vsb.MutRedistWeight.Apply(flawed["beta"])

	noShow := &Framework{Net: p.Net, Inputs: p.Inputs, Flows: p.Flows,
		ModelOpts: core.Options{Profiles: flawed}}
	rep := noShow.Run()
	weightDiffSeen := false
	for _, d := range rep.RouteDiffs {
		if d.Via == "monitoring" && d.Route.Weight != 0 {
			weightDiffSeen = true
		}
	}
	if weightDiffSeen {
		t.Error("monitoring projection must zero weights")
	}

	withShow := &Framework{Net: p.Net, Inputs: p.Inputs, Flows: p.Flows,
		ModelOpts:            core.Options{Profiles: flawed},
		HighPriorityPrefixes: []string{"192.0.2.0/24"}}
	rep2 := withShow.Run()
	found := false
	for _, d := range rep2.RouteDiffs {
		if d.Via == "live-show" {
			found = true
		}
	}
	if !found {
		t.Errorf("live-show must expose the weight flaw:\n%s", rep2.Summary())
	}
}

func TestVSBCampaignDetectsEveryVSB(t *testing.T) {
	p := BuildProbe()
	results := VSBCampaign(p)
	if len(results) != len(vsb.AllMutations) {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if !r.Detected {
			t.Errorf("VSB %s not detectable on the probe network", r.Mutation)
		}
	}
}

func TestFig9RootCauseWorkflow(t *testing.T) {
	// The §5.2 case study: the model does not know that vendor alpha zeroes
	// the IGP cost for SR-tunnelled destinations, so it simulates ECMP-free
	// forwarding differently from the live network, under-reporting one
	// link's load; the workflow localizes the divergence at H2.
	p := BuildProbe()
	flawed := vsb.Defaults()
	flawed["alpha"] = vsb.MutSRIGPCost.Apply(flawed["alpha"])
	f := &Framework{
		Net: p.Net, Inputs: p.Inputs, Flows: p.Flows,
		ModelOpts:     core.Options{Profiles: flawed},
		LoadTolerance: 0.01,
	}
	rep := f.Run()
	if len(rep.LoadDiffs) == 0 {
		t.Fatalf("expected load diffs:\n%s", rep.Summary())
	}
	// Pick the flagged link and run the workflow.
	analysis, err := rep.AnalyzeLink(rep.LoadDiffs[0].Link)
	if err != nil {
		t.Fatal(err)
	}
	if analysis.DivergedAt != "H2" {
		t.Errorf("diverged at %q, want H2\n%s", analysis.DivergedAt, analysis.Summary())
	}
	// The expert-facing rows show the tell-tale difference: the real RIB
	// prefers the SR path (ViaSR, IGP cost 0), the simulated one does not.
	var truthSR, modelSR bool
	for _, r := range analysis.TruthRows {
		if r.ViaSR && r.IGPCost == 0 {
			truthSR = true
		}
	}
	for _, r := range analysis.ModelRows {
		if r.ViaSR && r.IGPCost == 0 {
			modelSR = true
		}
	}
	if !truthSR || modelSR {
		t.Errorf("RIB rows must expose the SR cost VSB (truthSR=%v modelSR=%v)\n%s",
			truthSR, modelSR, analysis.Summary())
	}
	if !strings.Contains(analysis.Summary(), "diverges at H2") {
		t.Error("summary must name the diverging device")
	}
}

func TestTable4CampaignAllIssuesDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("issue campaign is slow")
	}
	out := gen.Generate(gen.WAN(1))
	probe := BuildProbe()
	issues := Table4Issues()
	if len(issues) != 26 {
		t.Fatalf("issues = %d, want 26", len(issues))
	}
	for _, is := range issues {
		is := is
		t.Run(string(is.Class)+"/"+is.Name, func(t *testing.T) {
			f := &Framework{
				Net: out.Net, Inputs: out.Inputs, Flows: out.Flows,
				HighPriorityPrefixes: []string{"10.0.0.0/24", "20.0.0.0/24"},
				LoadTolerance:        0.002,
			}
			if is.UseProbe {
				f.Net, f.Inputs, f.Flows = probe.Net, probe.Inputs, probe.Flows
				f.HighPriorityPrefixes = nil
			}
			f.RouteMon = &monitor.RouteMonitor{}
			f.TrafficMon = &monitor.TrafficMonitor{}
			is.Apply(f)
			rep := f.Run()
			if rep.Accurate {
				t.Errorf("injected issue not detected")
			}
		})
	}
	// The class distribution reproduces Table 4's ordering.
	shares := ClassShares(issues)
	order := OrderedClasses()
	for i := 1; i < len(order)-1; i++ { // exclude trailing "others"
		if shares[order[i-1]] < shares[order[i]] {
			t.Errorf("share(%s)=%.1f%% < share(%s)=%.1f%%: order broken",
				order[i-1], shares[order[i-1]], order[i], shares[order[i]])
		}
	}
}

func TestMonitorFaultsAreVisibleAsDiffs(t *testing.T) {
	// A failed route agent makes the monitor miss routes, which shows up as
	// "extra" simulated routes — the §5.1 "uncovered a list of issues in
	// our monitoring systems" direction.
	out := gen.Generate(gen.WAN(1))
	f := &Framework{
		Net: out.Net, Inputs: out.Inputs, Flows: out.Flows,
		RouteMon: &monitor.RouteMonitor{Faults: monitor.Faults{FailedRouteAgents: []string{"rr-0-0"}}},
	}
	rep := f.Run()
	if rep.Accurate {
		t.Fatal("agent failure must surface")
	}
	for _, d := range rep.RouteDiffs {
		if d.Route.Device != "rr-0-0" {
			t.Fatalf("unexpected diff beyond the failed agent: %v", d)
		}
		if d.Kind != "extra" {
			t.Fatalf("diff kind = %s, want extra (simulated but not collected)", d.Kind)
		}
	}
}

func TestBMPRestoresECMPVisibility(t *testing.T) {
	// With BMP deployed, ECMP siblings are visible; a model flaw breaking
	// multipath is then caught by monitoring directly.
	p := BuildProbe()
	flawed := vsb.Defaults()
	flawed["alpha"] = vsb.MutSRIGPCost.Apply(flawed["alpha"])
	bmp := map[string]bool{}
	for name := range p.Net.Devices {
		bmp[name] = true
	}
	f := &Framework{
		Net: p.Net, Inputs: p.Inputs, Flows: p.Flows,
		ModelOpts: core.Options{Profiles: flawed},
		RouteMon:  &monitor.RouteMonitor{BMPDevices: bmp},
	}
	rep := f.Run()
	found := false
	for _, d := range rep.RouteDiffs {
		if d.Route.Device == "H2" {
			found = true
		}
	}
	if !found {
		t.Errorf("BMP collection must expose H2's divergent selection:\n%s", rep.Summary())
	}
}

var _ = netmodel.DefaultVRF

func TestPropagationGraph(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	res := core.NewEngine(out.Net, core.Options{}).RouteSimulation(out.Inputs)
	prefix := out.Inputs[0].Prefix // a dc-0-0 prefix
	edges := PropagationGraph(res.GlobalRIB(), prefix)
	if len(edges) < 3 {
		t.Fatalf("propagation edges = %d, want several devices", len(edges))
	}
	var hasOrigin, hasLearned bool
	for _, e := range edges {
		if e.Device == "dc-0-0" && e.Peer == "input" {
			hasOrigin = true
		}
		if e.Peer == "rr-0-0" {
			hasLearned = true
		}
	}
	if !hasOrigin {
		t.Error("origin row (input at dc-0-0) missing")
	}
	if !hasLearned {
		t.Error("learned-from-RR rows missing")
	}
	text := FormatPropagation(prefix, edges)
	if !strings.Contains(text, "origin  dc-0-0") || !strings.Contains(text, "<- rr-0-0") {
		t.Errorf("formatted graph:\n%s", text)
	}
}
