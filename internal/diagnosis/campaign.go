package diagnosis

import (
	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/netmodel"
	"hoyan/internal/policy"
	"hoyan/internal/vsb"
	"slices"
)

// VSBResult is one row of the Table 5 differential-testing campaign.
type VSBResult struct {
	Mutation vsb.Mutation
	// Detected is true when mis-modelling the VSB produces an observable
	// difference between the model's and the live network's state.
	Detected bool
	// RouteDiffs counts differing global-RIB rows; LoadDiffs differing links.
	RouteDiffs int
	LoadDiffs  int
}

// VSBCampaign runs the Table 5 campaign over the probe network: for every
// VSB, the "Hoyan under test" mis-models that single behaviour (mutated
// profile for both vendors) while the live network keeps the faithful
// profiles; any resulting RIB or load difference means the daily validation
// would have flagged it.
func VSBCampaign(p *Probe) []VSBResult {
	truth := core.NewEngine(p.Net, core.Options{}).Run(p.Inputs, p.Flows)
	truthRIB := truth.Routes.GlobalRIB()

	var out []VSBResult
	for _, m := range vsb.AllMutations {
		profiles := vsb.Defaults()
		for v, prof := range profiles {
			profiles[v] = m.Apply(prof)
		}
		model := core.NewEngine(p.Net, core.Options{Profiles: profiles}).Run(p.Inputs, p.Flows)
		a, b := model.Routes.GlobalRIB().Diff(truthRIB)

		loadDiffs := 0
		if truth.Traffic != nil && model.Traffic != nil {
			ids := map[netmodel.LinkID]bool{}
			for id := range truth.Traffic.Traffic.Load {
				ids[id] = true
			}
			for id := range model.Traffic.Traffic.Load {
				ids[id] = true
			}
			for id := range ids {
				d := truth.Traffic.Traffic.Load[id] - model.Traffic.Traffic.Load[id]
				if d > 1 || d < -1 {
					loadDiffs++
				}
			}
		}
		out = append(out, VSBResult{
			Mutation:   m,
			Detected:   len(a)+len(b)+loadDiffs > 0,
			RouteDiffs: len(a) + len(b),
			LoadDiffs:  loadDiffs,
		})
	}
	return out
}

// IssueClass is one Table 4 issue category.
type IssueClass string

// Table 4 issue classes.
const (
	IssueRouteMonitoring   IssueClass = "route monitoring data"
	IssueTrafficMonitoring IssueClass = "traffic monitoring data"
	IssueTopologyData      IssueClass = "topology data"
	IssueConfigParsing     IssueClass = "config parsing"
	IssueInputBuilding     IssueClass = "input route building"
	IssueImplementationBug IssueClass = "simulation implementation bug"
	IssueUnmodeledVSB      IssueClass = "unmodeled VSB"
	IssueUnmodeledFeature  IssueClass = "unmodeled new feature"
	IssueBGPConvergence    IssueClass = "BGP convergence"
	IssueOther             IssueClass = "others"
)

// Issue is one injectable accuracy defect.
type Issue struct {
	Class IssueClass
	Name  string
	// Apply mutates the framework before the daily validation runs.
	Apply func(f *Framework)
	// UseProbe selects the probe network as the base (issues whose
	// observability needs a specific topology shape: SR, TE, convergence,
	// ACL/PBR chains).
	UseProbe bool
}

// Table4Issues builds the §5.3 issue-injection campaign over a base network.
// The per-class counts follow the paper's Table 4 proportions (scaled to 26
// injected issues), so the output distribution reproduces the table's shape.
func Table4Issues() []Issue {
	var out []Issue
	add := func(class IssueClass, name string, n int, mk func(i int) func(f *Framework)) {
		for i := 0; i < n; i++ {
			out = append(out, Issue{Class: class, Name: name, Apply: mk(i)})
		}
	}
	addProbe := func(class IssueClass, name string, n int, mk func(i int) func(f *Framework)) {
		for i := 0; i < n; i++ {
			out = append(out, Issue{Class: class, Name: name, Apply: mk(i), UseProbe: true})
		}
	}

	// Route monitoring data issues (Table 4 row 1, ~23%): agents fail.
	add(IssueRouteMonitoring, "route agent failure", 6, func(i int) func(f *Framework) {
		return func(f *Framework) {
			devs := f.Net.DeviceNames()
			f.RouteMon.Faults.FailedRouteAgents = []string{devs[i%len(devs)]}
		}
	})
	// Traffic monitoring data issues (row 2, ~19%): NetFlow volume bug.
	add(IssueTrafficMonitoring, "netflow volume bug", 5, func(i int) func(f *Framework) {
		return func(f *Framework) {
			f.TrafficMon.Faults.FlowVolumeScale = 1.5 + float64(i)*0.2
		}
	})
	// Topology data issues (row 3, ~12%): stale link data. The hidden links
	// are a DC gateway's uplinks, which carry all its prefixes' traffic.
	add(IssueTopologyData, "stale topology", 3, func(i int) func(f *Framework) {
		return func(f *Framework) {
			links := f.Net.Topo.LinksOf("dc-0-0")
			if len(links) == 0 {
				links = f.Net.Topo.Links()
			}
			f.TrafficMon.Faults.HiddenLinks = []netmodel.LinkID{links[i%len(links)].ID()}
		}
	})
	// Config parsing flaws (row 4, ~10%): a route-map node is silently
	// dropped during parsing.
	add(IssueConfigParsing, "route-map node lost in parsing", 2, func(i int) func(f *Framework) {
		return func(f *Framework) {
			// Damage the model's copy of the network: the parser "loses" the
			// deny node of a border's ISP export policy, so the model leaks
			// no-export routes the live network filters.
			f.mutateModelNet = func(net *configNetwork) {
				dropped := 0
				for _, name := range net.DeviceNames() {
					d := net.Devices[name]
					if rm := d.RouteMaps["RM_ISP_OUT"]; rm != nil && rm.Node(10) != nil {
						rm.DeleteNode(10)
						dropped++
						if dropped > i {
							return
						}
					}
				}
			}
		}
	})
	// Input route building flaws (row 5, ~10%): routes with empty AS paths
	// are discarded by a pre-processing rule (the paper's DC-aggregate bug).
	add(IssueInputBuilding, "empty-AS-path inputs dropped", 2, func(i int) func(f *Framework) {
		return func(f *Framework) {
			f.filterModelInputs = func(inputs []netmodel.Route) []netmodel.Route {
				var kept []netmodel.Route
				for _, r := range inputs {
					if len(r.ASPath.Seq) > 0 || len(r.ASPath.Set) > 0 {
						kept = append(kept, r)
					}
				}
				return kept
			}
		}
	})
	// Simulation implementation bugs (row 6, ~8%): the flawed AS-path regex.
	add(IssueImplementationBug, "flawed AS-path regex", 2, func(i int) func(f *Framework) {
		return func(f *Framework) { f.ModelOpts.FlawedASPathRegex = true }
	})
	// Unmodeled VSBs (row 7, ~6%): the SR IGP-cost behaviour missing.
	addProbe(IssueUnmodeledVSB, "SR IGP-cost VSB unmodeled", 2, func(i int) func(f *Framework) {
		return func(f *Framework) {
			profiles := vsb.Defaults()
			for v, prof := range profiles {
				profiles[v] = vsb.MutSRIGPCost.Apply(prof)
			}
			f.ModelOpts.Profiles = profiles
		}
	})
	// Unmodeled new features (row 8, ~4%): IS-IS TE not supported.
	addProbe(IssueUnmodeledFeature, "IS-IS TE metric unmodeled", 1, func(i int) func(f *Framework) {
		return func(f *Framework) {
			f.TruthOpts.UseTEMetric = true
			f.ModelOpts.UseTEMetric = false
		}
	})
	// BGP convergence ambiguity (row 9, ~2%): the live network converged to
	// a different tie-break order; modelled as a router-ID change invisible
	// to the model.
	addProbe(IssueBGPConvergence, "alternate convergence state", 1, func(i int) func(f *Framework) {
		return func(f *Framework) {
			f.mutateModelNet = func(net *configNetwork) {
				// The live network's tie-break picked the other peer; model
				// this as swapped router IDs on the tied advertisers.
				a, b := net.Devices["B4"], net.Devices["C4"]
				if a != nil && b != nil {
					a.RouterID, b.RouterID = b.RouterID, a.RouterID
				}
			}
		}
	})
	// Others (~8%): ACLs not modelled, PBR not modelled.
	addProbe(IssueOther, "ACLs unmodeled", 1, func(i int) func(f *Framework) {
		return func(f *Framework) { f.ModelOpts.IgnoreACLs = true }
	})
	addProbe(IssueOther, "PBR unmodeled", 1, func(i int) func(f *Framework) {
		return func(f *Framework) { f.ModelOpts.IgnorePBR = true }
	})
	return out
}

// ClassShares tallies a campaign outcome into Table 4's percentage shape.
func ClassShares(issues []Issue) map[IssueClass]float64 {
	counts := map[IssueClass]int{}
	for _, is := range issues {
		counts[is.Class]++
	}
	out := make(map[IssueClass]float64, len(counts))
	for c, n := range counts {
		out[c] = float64(n) / float64(len(issues)) * 100
	}
	return out
}

// OrderedClasses returns the Table 4 classes in presentation order.
func OrderedClasses() []IssueClass {
	return []IssueClass{
		IssueRouteMonitoring, IssueTrafficMonitoring, IssueTopologyData,
		IssueConfigParsing, IssueInputBuilding, IssueImplementationBug,
		IssueUnmodeledVSB, IssueUnmodeledFeature, IssueBGPConvergence, IssueOther,
	}
}

// Type aliases keeping campaign code concise.
type configNetwork = config.Network
type configDevice = config.Device
type policyRouteMap = policy.RouteMap

func sortedRouteMaps(d *configDevice) []*policyRouteMap {
	names := make([]string, 0, len(d.RouteMaps))
	for n := range d.RouteMaps {
		names = append(names, n)
	}
	slices.Sort(names)
	out := make([]*policyRouteMap, 0, len(names))
	for _, n := range names {
		out = append(out, d.RouteMaps[n])
	}
	return out
}
