package diagnosis

import (
	"fmt"
	"net/netip"

	"hoyan/internal/config"
	"hoyan/internal/netmodel"
	"hoyan/internal/policy"
)

// Probe is a compact purpose-built network that exercises every Table 5
// vendor-specific behaviour, so that flipping any single VSB in the model
// under test produces an observable simulated-RIB difference. The Table 5
// differential-testing campaign (VSBCampaign) runs over it.
type Probe struct {
	Net    *config.Network
	Inputs []netmodel.Route
	Flows  []netmodel.Flow
}

// BuildProbe constructs the probe network.
func BuildProbe() *Probe {
	b := &probeBuilder{net: config.NewNetwork()}

	// Hub H (alpha, AS 65000) with assorted eBGP peers P1..P7.
	h := b.device("H", "alpha", 65000, "8.0.0.1")
	h.MaxPaths = 4

	peers := []struct {
		name string
		asn  netmodel.ASN
	}{
		{"P1", 65001}, {"P2", 65002}, {"P3", 65003}, {"P4", 65004},
		{"P5", 65005}, {"P6", 65006}, {"P7", 65007},
	}
	for _, p := range peers {
		d := b.device(p.name, "alpha", p.asn, fmt.Sprintf("8.0.1.%d", p.asn-65000))
		b.link("H", p.name, 10)
		b.ebgpPair("H", p.name)
		// External interface so injected routes' next hops resolve.
		ext := netip.MustParseAddr(fmt.Sprintf("198.51.%d.1", p.asn-65000))
		d.Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.PrefixFrom(ext, 24)}
	}

	// --- policy VSBs on H's imports ---
	// P1: NO import policy (missing-policy VSB is exercised on H's side
	//     because we leave H's neighbor to P1 without a policy).
	// P2: undefined policy name.
	b.setImport("H", "P2", "RM_DOES_NOT_EXIST")
	// P3: policy whose only node never matches (default-policy VSB).
	h.RouteMaps["RM_NOMATCH"] = &policy.RouteMap{Name: "RM_NOMATCH", Nodes: []*policy.Node{
		{Seq: 10, Action: policy.ActionPermit, Matches: []policy.Match{{Kind: policy.MatchPrefixList, ListName: "PL_UNUSED"}}},
	}}
	h.PrefixLists["PL_UNUSED"] = &policy.PrefixList{Name: "PL_UNUSED", Family: policy.FamilyIPv4, Entries: []policy.PrefixEntry{
		{Permit: true, Prefix: netip.MustParsePrefix("192.0.2.0/24")},
	}}
	b.setImport("H", "P3", "RM_NOMATCH")
	// P4: policy node referencing an undefined filter (undefined-filter VSB).
	h.RouteMaps["RM_UNDEF_FILTER"] = &policy.RouteMap{Name: "RM_UNDEF_FILTER", Nodes: []*policy.Node{
		{Seq: 10, Action: policy.ActionPermit,
			Matches: []policy.Match{{Kind: policy.MatchPrefixList, ListName: "PL_NEVER_DEFINED"}},
			Sets:    []policy.Set{{Kind: policy.SetLocalPref, Value: 222}}},
		{Seq: 20, Action: policy.ActionPermit},
	}}
	b.setImport("H", "P4", "RM_UNDEF_FILTER")
	// P5: matching node without an explicit action (no-action VSB).
	h.RouteMaps["RM_NOACTION"] = &policy.RouteMap{Name: "RM_NOACTION", Nodes: []*policy.Node{
		{Seq: 10, Action: policy.ActionUnset, Sets: []policy.Set{{Kind: policy.SetLocalPref, Value: 333}}},
	}}
	b.setImport("H", "P5", "RM_NOACTION")
	// P6: IPv6 route filtered through an IPv4 prefix list (Figure 10(b) VSB).
	h.RouteMaps["RM_V6"] = &policy.RouteMap{Name: "RM_V6", Nodes: []*policy.Node{
		{Seq: 10, Action: policy.ActionDeny, Matches: []policy.Match{{Kind: policy.MatchPrefixList, ListName: "PL_V4ONLY"}}},
		{Seq: 20, Action: policy.ActionPermit},
	}}
	h.PrefixLists["PL_V4ONLY"] = &policy.PrefixList{Name: "PL_V4ONLY", Family: policy.FamilyIPv4, Entries: []policy.PrefixEntry{
		{Permit: true, Prefix: netip.MustParsePrefix("203.0.113.0/24")},
	}}
	b.setImport("H", "P6", "RM_V6")
	// P7: export policy overwriting the AS path (own-ASN VSB) — observable
	// on P7's RIB.
	h.RouteMaps["RM_OVERWRITE"] = &policy.RouteMap{Name: "RM_OVERWRITE", Nodes: []*policy.Node{
		{Seq: 10, Action: policy.ActionPermit, Sets: []policy.Set{
			{Kind: policy.ReplaceASPath, ASPath: netmodel.ASPath{Seq: []netmodel.ASN{64999}}},
		}},
	}}
	b.setExport("H", "P7", "RM_OVERWRITE")

	// --- redistribution VSBs ---
	// Statics + direct redistribution on H: weight-after-redistribution,
	// /32 direct route production and peer advertisement.
	l := b.net.Topo.FindLink("H", "P1")
	p1Addr := l.AAddr
	if l.A != "P1" {
		p1Addr = l.BAddr
	}
	h.Statics = append(h.Statics, config.StaticRoute{
		VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix("192.0.2.0/24"),
		NextHop: p1Addr, Preference: 1,
	})
	h.Redistributes = append(h.Redistributes,
		config.Redistribution{From: netmodel.ProtoStatic},
		config.Redistribution{From: netmodel.ProtoDirect},
	)

	// --- aggregation VSB ---
	// Aggregate without as-set over contributors sharing an AS-path prefix.
	h.Aggregates = append(h.Aggregates, config.Aggregate{
		VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix("100.100.0.0/16"),
	})

	// --- VRF leaking VSBs ---
	h.VRFs["v1"] = &config.VRF{Name: "v1", ExportRTs: []string{"rt1"}}
	h.VRFs["v2"] = &config.VRF{Name: "v2", ImportRTs: []string{"rt1"}, ExportRTs: []string{"rt2"}}
	h.VRFs["v3"] = &config.VRF{Name: "v3", ImportRTs: []string{"rt2"}}
	// vg imports the global table; its export policy participates in the
	// VRF-export-policy-on-global-leak VSB.
	h.VRFs["vg"] = &config.VRF{Name: "vg", ImportRTs: []string{"global"}, ExportPolicy: "RM_VRFEXP"}
	h.RouteMaps["RM_VRFEXP"] = &policy.RouteMap{Name: "RM_VRFEXP", Nodes: []*policy.Node{
		{Seq: 10, Action: policy.ActionPermit, Sets: []policy.Set{{Kind: policy.SetLocalPref, Value: 555}}},
	}}

	// --- SR IGP-cost VSB (the Figure 9 shape) ---
	// H2 learns a prefix via B2 (cost 10) and C2 (cost 30); an SR policy
	// toward C2 zeroes the IGP cost on cost-zeroing vendors.
	h2 := b.device("H2", "alpha", 65000, "8.0.0.2")
	b2 := b.device("B2", "alpha", 65000, "8.0.2.1")
	c2 := b.device("C2", "alpha", 65000, "8.0.2.2")
	h2.MaxPaths = 4
	b.link("H2", "B2", 10)
	b.link("H2", "C2", 30)
	b.ibgpPair("H2", "B2")
	b.ibgpPair("H2", "C2")
	b2.Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("198.51.200.1/24")}
	c2.Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("198.51.201.1/24")}
	h2.SRPolicies = append(h2.SRPolicies, &config.SRPolicy{Name: "SR-C2", Endpoint: c2.Loopback, Color: 7})

	// --- sub-view inheritance VSB ---
	// H and I1 have a global iBGP session (import policy lowers LP) and a
	// v1-VRF session without a policy; inheriting vendors apply the global
	// binding to the VRF session too.
	i1 := b.device("I1", "alpha", 65000, "8.0.0.3")
	i1.VRFs["v1"] = &config.VRF{Name: "v1"}
	b.link("H", "I1", 10)
	b.ibgpPair("H", "I1")
	h.RouteMaps["RM_GLOBAL_IN"] = &policy.RouteMap{Name: "RM_GLOBAL_IN", Nodes: []*policy.Node{
		{Seq: 10, Action: policy.ActionPermit, Sets: []policy.Set{{Kind: policy.SetLocalPref, Value: 444}}},
	}}
	b.setImport("H", "I1", "RM_GLOBAL_IN")
	// VRF session between H and I1 over the link addresses.
	li := b.net.Topo.FindLink("H", "I1")
	hAddr, iAddr := li.AAddr, li.BAddr
	if li.A != "H" {
		hAddr, iAddr = iAddr, hAddr
	}
	h.Neighbors = append(h.Neighbors, &config.Neighbor{Addr: iAddr, RemoteAS: 65000, VRF: "v1"})
	i1.Neighbors = append(i1.Neighbors, &config.Neighbor{Addr: hAddr, RemoteAS: 65000, VRF: "v1"})

	// --- isolation VSB ---
	z := b.device("Z", "alpha", 65000, "8.0.0.4")
	b.link("H", "Z", 10)
	b.ibgpPair("H", "Z")
	z.Isolated = true
	z.Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("198.51.202.1/24")}

	// --- IS-IS TE triangle (the "new feature not modelled" issue) ---
	h3 := b.device("H3", "alpha", 65000, "8.0.0.5")
	b3 := b.device("B3", "alpha", 65000, "8.0.3.1")
	c3 := b.device("C3", "alpha", 65000, "8.0.3.2")
	h3.MaxPaths = 4
	b.link("H3", "B3", 10)
	b.link("H3", "C3", 30)
	// TE metric makes the cheap IGP branch expensive for TE-aware SPF.
	if l := b.net.Topo.FindLink("H3", "B3"); l != nil {
		l.TEAB, l.TEBA = 200, 200
	}
	b.ibgpPair("H3", "B3")
	b.ibgpPair("H3", "C3")
	b3.Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("198.51.203.1/24")}
	c3.Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("198.51.204.1/24")}

	// --- convergence tie-break pair (router-ID decides the single best) ---
	h4 := b.device("H4", "alpha", 65000, "8.0.0.6")
	b4 := b.device("B4", "alpha", 65000, "8.0.4.1")
	c4 := b.device("C4", "alpha", 65000, "8.0.4.2")
	h4.MaxPaths = 1
	b.link("H4", "B4", 10)
	b.link("H4", "C4", 10)
	b.ibgpPair("H4", "B4")
	b.ibgpPair("H4", "C4")
	b4.Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("198.51.205.1/24")}
	c4.Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("198.51.206.1/24")}

	// --- ACL chain (H5 -> M5 -> E5; the ACL at M5 stops the flow before
	// the M5-E5 link, so ignoring ACLs changes that link's load) ---
	h5 := b.device("H5", "alpha", 65000, "8.0.0.7")
	m5 := b.device("M5", "alpha", 65000, "8.0.5.1")
	e5 := b.device("E5", "alpha", 65000, "8.0.5.2")
	b.link("H5", "M5", 10)
	b.link("M5", "E5", 10)
	e5.Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("10.55.0.1/24")}
	l5 := b.net.Topo.FindLink("H5", "M5")
	m5Addr := l5.AAddr
	if l5.A != "M5" {
		m5Addr = l5.BAddr
	}
	l5e := b.net.Topo.FindLink("M5", "E5")
	e5Addr := l5e.AAddr
	if l5e.A != "E5" {
		e5Addr = l5e.BAddr
	}
	h5.Statics = append(h5.Statics, config.StaticRoute{
		VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix("10.55.0.0/24"), NextHop: m5Addr, Preference: 1,
	})
	m5.Statics = append(m5.Statics, config.StaticRoute{
		VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix("10.55.0.0/24"), NextHop: e5Addr, Preference: 1,
	})
	m5.ACLs["NO443"] = &policy.ACL{Name: "NO443", Entries: []policy.ACLEntry{
		{Permit: false, Proto: netmodel.ProtoTCP, DstPortLo: 443, DstPortHi: 443},
		{Permit: true},
	}}
	m5.Interfaces["to-H5"].ACLIn = "NO443"

	// --- PBR pair (H6 steers around its static route) ---
	h6 := b.device("H6", "alpha", 65000, "8.0.0.8")
	m6a := b.device("M6A", "alpha", 65000, "8.0.6.1")
	m6b := b.device("M6B", "alpha", 65000, "8.0.6.2")
	b.link("H6", "M6A", 10)
	b.link("H6", "M6B", 10)
	m6a.Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("10.56.0.1/24")}
	m6b.Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.MustParsePrefix("10.56.0.2/24")}
	la := b.net.Topo.FindLink("H6", "M6A")
	aSide := la.AAddr
	if la.A != "M6A" {
		aSide = la.BAddr
	}
	lb := b.net.Topo.FindLink("H6", "M6B")
	bSide := lb.AAddr
	if lb.A != "M6B" {
		bSide = lb.BAddr
	}
	h6.Statics = append(h6.Statics, config.StaticRoute{
		VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix("10.56.0.0/24"), NextHop: aSide, Preference: 1,
	})
	h6.PBRPolicies["VIA_B"] = []config.PBRRule{{
		Name:    "VIA_B",
		Match:   policy.ACLEntry{Permit: true, Dst: netip.MustParsePrefix("10.56.0.0/24")},
		NextHop: bSide,
	}}
	h6.Interfaces["to-M6A"].PBR = "VIA_B"

	// ---- input routes ----
	in := func(dev, prefix string, nh netip.Addr, vrf string, path ...netmodel.ASN) netmodel.Route {
		return netmodel.Route{
			Device: dev, VRF: vrf, Prefix: netip.MustParsePrefix(prefix),
			Protocol: netmodel.ProtoBGP, NextHop: nh,
			ASPath: netmodel.ASPath{Seq: path}, Source: dev,
		}
	}
	extNH := func(dev string) netip.Addr {
		return b.net.Devices[dev].Interfaces["ext"].Addr.Addr().Next()
	}
	inputs := []netmodel.Route{
		in("P1", "10.1.0.0/24", extNH("P1"), netmodel.DefaultVRF, 65101),
		in("P2", "10.2.0.0/24", extNH("P2"), netmodel.DefaultVRF, 65102),
		in("P3", "10.3.0.0/24", extNH("P3"), netmodel.DefaultVRF, 65103),
		in("P4", "10.4.0.0/24", extNH("P4"), netmodel.DefaultVRF, 65104),
		in("P5", "10.5.0.0/24", extNH("P5"), netmodel.DefaultVRF, 65105),
		in("P6", "2400:cafe::/32", netip.MustParseAddr("2001:db8::1"), netmodel.DefaultVRF, 65106),
		in("P7", "10.7.0.0/24", extNH("P7"), netmodel.DefaultVRF, 65107),
		// Aggregate contributors via P1, sharing the "65101 65200" prefix.
		in("P1", "100.100.1.0/24", extNH("P1"), netmodel.DefaultVRF, 65101, 65200, 65301),
		in("P1", "100.100.2.0/24", extNH("P1"), netmodel.DefaultVRF, 65101, 65200, 65302),
		// VRF chain input.
		{Device: "H", VRF: "v1", Prefix: netip.MustParsePrefix("10.99.0.0/24"),
			Protocol: netmodel.ProtoBGP, NextHop: h.Loopback, Source: "H"},
		// SR-shape inputs at B2 and C2.
		in("B2", "10.77.0.0/24", netip.MustParseAddr("198.51.200.2"), netmodel.DefaultVRF, 65400),
		in("C2", "10.77.0.0/24", netip.MustParseAddr("198.51.201.2"), netmodel.DefaultVRF, 65400),
		// TE-shape inputs at B3 and C3.
		in("B3", "10.78.0.0/24", netip.MustParseAddr("198.51.203.2"), netmodel.DefaultVRF, 65410),
		in("C3", "10.78.0.0/24", netip.MustParseAddr("198.51.204.2"), netmodel.DefaultVRF, 65410),
		// Convergence-shape inputs at B4 and C4.
		in("B4", "10.79.0.0/24", netip.MustParseAddr("198.51.205.2"), netmodel.DefaultVRF, 65420),
		in("C4", "10.79.0.0/24", netip.MustParseAddr("198.51.206.2"), netmodel.DefaultVRF, 65420),
		// Inheritance-shape input at I1 in v1.
		{Device: "I1", VRF: "v1", Prefix: netip.MustParsePrefix("10.88.0.0/24"),
			Protocol: netmodel.ProtoBGP, NextHop: i1.Loopback, Source: "I1"},
		// Isolated device input.
		in("Z", "10.66.0.0/24", extNH("Z"), netmodel.DefaultVRF, 65500),
	}
	// P6's IPv6 next hop must resolve: give P6 a v6 external subnet.
	b.net.Devices["P6"].Interfaces["ext6"] = &config.Interface{Name: "ext6", Addr: netip.MustParsePrefix("2001:db8::2/64")}

	flows := []netmodel.Flow{
		{Ingress: "H", Src: netip.MustParseAddr("192.0.2.9"), Dst: netip.MustParseAddr("10.1.0.5"),
			SrcPort: 1000, DstPort: 443, Proto: netmodel.ProtoTCP, Volume: 50e6},
		{Ingress: "H2", Src: netip.MustParseAddr("192.0.2.9"), Dst: netip.MustParseAddr("10.77.0.5"),
			SrcPort: 1001, DstPort: 443, Proto: netmodel.ProtoTCP, Volume: 70e6},
		{Ingress: "H3", Src: netip.MustParseAddr("192.0.2.9"), Dst: netip.MustParseAddr("10.78.0.5"),
			SrcPort: 1002, DstPort: 443, Proto: netmodel.ProtoTCP, Volume: 60e6},
		{Ingress: "H5", Src: netip.MustParseAddr("192.0.2.9"), Dst: netip.MustParseAddr("10.55.0.5"),
			SrcPort: 1003, DstPort: 443, Proto: netmodel.ProtoTCP, Volume: 40e6},
		{Ingress: "H6", Src: netip.MustParseAddr("192.0.2.9"), Dst: netip.MustParseAddr("10.56.0.5"),
			SrcPort: 1004, DstPort: 443, Proto: netmodel.ProtoTCP, Volume: 45e6},
	}
	return &Probe{Net: b.net, Inputs: inputs, Flows: flows}
}

type probeBuilder struct {
	net      *config.Network
	nextLink int
}

func (b *probeBuilder) device(name, vendor string, asn netmodel.ASN, lo string) *config.Device {
	d := config.NewDevice(name, vendor)
	d.ASN = asn
	d.Loopback = netip.MustParseAddr(lo)
	d.RouterID = d.Loopback
	b.net.Devices[name] = d
	b.net.Topo.AddNode(netmodel.Node{Name: name, Loopback: d.Loopback})
	return d
}

func (b *probeBuilder) link(a, bdev string, cost uint32) {
	b.nextLink++
	v := b.nextLink * 4
	base := netip.AddrFrom4([4]byte{172, 28, byte(v >> 8), byte(v)})
	aAddr := base.Next()
	bAddr := aAddr.Next()
	aIf, bIf := "to-"+bdev, "to-"+a
	b.net.Devices[a].Interfaces[aIf] = &config.Interface{Name: aIf, Addr: netip.PrefixFrom(aAddr, 30), ISISCost: cost, Bandwidth: 1e9}
	b.net.Devices[bdev].Interfaces[bIf] = &config.Interface{Name: bIf, Addr: netip.PrefixFrom(bAddr, 30), ISISCost: cost, Bandwidth: 1e9}
	b.net.Topo.AddLink(netmodel.Link{
		A: a, B: bdev, AIface: aIf, BIface: bIf,
		ANet: netip.PrefixFrom(base, 30), BNet: netip.PrefixFrom(base, 30),
		AAddr: aAddr, BAddr: bAddr, CostAB: cost, CostBA: cost, Bandwidth: 1e9,
	})
}

func (b *probeBuilder) ebgpPair(a, bdev string) {
	l := b.net.Topo.FindLink(a, bdev)
	aAddr, bAddr := l.AAddr, l.BAddr
	if l.A != a {
		aAddr, bAddr = bAddr, aAddr
	}
	da, db := b.net.Devices[a], b.net.Devices[bdev]
	da.Neighbors = append(da.Neighbors, &config.Neighbor{Addr: bAddr, RemoteAS: db.ASN, VRF: netmodel.DefaultVRF})
	db.Neighbors = append(db.Neighbors, &config.Neighbor{Addr: aAddr, RemoteAS: da.ASN, VRF: netmodel.DefaultVRF})
}

func (b *probeBuilder) ibgpPair(a, bdev string) {
	da, db := b.net.Devices[a], b.net.Devices[bdev]
	da.Neighbors = append(da.Neighbors, &config.Neighbor{Addr: db.Loopback, RemoteAS: db.ASN, VRF: netmodel.DefaultVRF, UpdateSource: true})
	db.Neighbors = append(db.Neighbors, &config.Neighbor{Addr: da.Loopback, RemoteAS: da.ASN, VRF: netmodel.DefaultVRF, UpdateSource: true, NextHopSelf: true})
}

func (b *probeBuilder) setImport(dev, peer, policyName string) {
	b.setPolicy(dev, peer, policyName, true)
}

func (b *probeBuilder) setExport(dev, peer, policyName string) {
	b.setPolicy(dev, peer, policyName, false)
}

func (b *probeBuilder) setPolicy(dev, peer, policyName string, isImport bool) {
	d := b.net.Devices[dev]
	for _, nb := range d.Neighbors {
		if b.net.Topo.AddrOwner(nb.Addr) == peer {
			if isImport {
				nb.ImportPolicy = policyName
			} else {
				nb.ExportPolicy = policyName
			}
			return
		}
	}
	panic("probe: no neighbor toward " + peer)
}
