package diagnosis

import (
	"fmt"
	"net/netip"
	"strings"

	"hoyan/internal/netmodel"
	"slices"
)

// PropEdge is one hop of a route's propagation: the route reached Device
// from Peer ("input", "network", "redistribute:*", "aggregate", "leak:*"
// mark origination points).
type PropEdge struct {
	Device string
	VRF    string
	Peer   string
	Route  netmodel.Route
}

// PropagationGraph reconstructs how a prefix propagated through the network
// from the provenance recorded on the simulated RIB rows — the §2.2
// automation that "builds the propagation graph of a route" so experts can
// walk a mis-simulated route back to its origin.
func PropagationGraph(rib *netmodel.GlobalRIB, prefix netip.Prefix) []PropEdge {
	var edges []PropEdge
	for _, r := range rib.Rows() {
		if r.Prefix != prefix {
			continue
		}
		edges = append(edges, PropEdge{Device: r.Device, VRF: r.VRF, Peer: r.Peer, Route: r})
	}
	slices.SortFunc(edges, func(a, b PropEdge) int {
		if c := strings.Compare(a.Device, b.Device); c != 0 {
			return c
		}
		if c := strings.Compare(a.VRF, b.VRF); c != 0 {
			return c
		}
		return strings.Compare(a.Peer, b.Peer)
	})
	return edges
}

// FormatPropagation renders the graph origin-first: origination rows, then
// learned rows grouped by device.
func FormatPropagation(prefix netip.Prefix, edges []PropEdge) string {
	var b strings.Builder
	fmt.Fprintf(&b, "propagation of %s (%d rows):\n", prefix, len(edges))
	isOrigin := func(peer string) bool {
		return peer == "input" || peer == "network" || peer == "static" ||
			peer == "direct" || peer == "aggregate" ||
			strings.HasPrefix(peer, "redistribute:")
	}
	for _, e := range edges {
		if isOrigin(e.Peer) {
			fmt.Fprintf(&b, "  origin  %s/%s (%s) %s\n", e.Device, e.VRF, e.Peer, e.Route.RouteType)
		}
	}
	for _, e := range edges {
		if !isOrigin(e.Peer) {
			fmt.Fprintf(&b, "  %s/%s <- %s (%s, lp=%d, aspath=[%s])\n",
				e.Device, e.VRF, e.Peer, e.Route.RouteType, e.Route.LocalPref, e.Route.ASPath)
		}
	}
	return b.String()
}
