package diagnosis

import (
	"fmt"
	"strings"

	"cmp"
	"hoyan/internal/core"
	"hoyan/internal/netmodel"
	"hoyan/internal/traffic"
	"slices"
)

// RootCauseAnalysis is the §5.2 workflow outcome for one inaccurate link:
// the selected large-volume flow, its simulated and real forwarding paths,
// the first device where they diverge, and the RIB rows that device uses for
// the flow in each world — everything the expert needs for step (5).
type RootCauseAnalysis struct {
	Link netmodel.LinkID
	Flow netmodel.Flow

	ModelPath netmodel.Path
	TruthPath netmodel.Path

	// DivergedAt is the first device whose forwarding differs ("" when the
	// paths agree — the inaccuracy then stems from inputs, not forwarding).
	DivergedAt string

	// ModelRows / TruthRows are the LPM best rows for the flow at the
	// diverging device in each world.
	ModelRows []netmodel.Route
	TruthRows []netmodel.Route
}

// AnalyzeLink runs the workflow for one flagged link:
//
//	(1) the link is given (from the accuracy report);
//	(2) identify a large-volume flow traversing it in the ground truth;
//	(3) build the flow's forwarding paths in both worlds;
//	(4) compare per-device forwarding to find the divergence;
//	(5) emit the diverging device's matching RIB rows for expert analysis.
func (r *Report) AnalyzeLink(link netmodel.LinkID) (*RootCauseAnalysis, error) {
	// (2) Largest-volume truth flow traversing the link.
	var flows []netmodel.Flow
	if r.truth.Traffic == nil {
		return nil, fmt.Errorf("diagnosis: no traffic simulation available")
	}
	for _, fp := range r.truth.Traffic.Traffic.Paths {
		if fp.Path.Traverses(link) {
			flows = append(flows, fp.Flow)
		}
	}
	if len(flows) == 0 {
		// The model may route flows over the link that the truth does not.
		if r.model.Traffic != nil {
			for _, fp := range r.model.Traffic.Traffic.Paths {
				if fp.Path.Traverses(link) {
					flows = append(flows, fp.Flow)
				}
			}
		}
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("diagnosis: no flow traverses %s in either world", link)
	}
	slices.SortFunc(flows, func(a, b netmodel.Flow) int {
		if a.Volume != b.Volume {
			return cmp.Compare(b.Volume, a.Volume)
		}
		return netmodel.CompareFlows(a, b)
	})
	flow := flows[0]
	return r.AnalyzeFlow(link, flow)
}

// AnalyzeFlow runs steps (3)-(5) for a specific flow.
func (r *Report) AnalyzeFlow(link netmodel.LinkID, flow netmodel.Flow) (*RootCauseAnalysis, error) {
	truthEng := r.truthForwarder()
	modelEng := r.modelForwarder()

	out := &RootCauseAnalysis{Link: link, Flow: flow}
	out.TruthPath = truthEng.Path(flow)
	out.ModelPath = modelEng.Path(flow)

	// (4) First diverging device along the two paths.
	tp, mp := out.TruthPath.Hops, out.ModelPath.Hops
	for i := 0; i < len(tp) || i < len(mp); i++ {
		switch {
		case i >= len(tp):
			out.DivergedAt = mp[i-1].Device
		case i >= len(mp):
			out.DivergedAt = tp[i-1].Device
		case tp[i].Device != mp[i].Device:
			if i > 0 {
				out.DivergedAt = tp[i-1].Device
			} else {
				out.DivergedAt = tp[i].Device
			}
		case tp[i].Link != mp[i].Link && tp[i].Link != (netmodel.LinkID{}) && mp[i].Link != (netmodel.LinkID{}):
			out.DivergedAt = tp[i].Device
		default:
			continue
		}
		break
	}
	if out.DivergedAt == "" && out.TruthPath.Exit != out.ModelPath.Exit {
		// Same hops, different fate: diverged at the last device.
		if len(tp) > 0 {
			out.DivergedAt = tp[len(tp)-1].Device
		}
	}

	// (5) Matching RIB rows at the diverging device in both worlds.
	if out.DivergedAt != "" {
		if _, best, ok := r.model.Routes.RIB(out.DivergedAt, netmodel.DefaultVRF).LongestMatch(flow.Dst); ok {
			out.ModelRows = best
		}
		if _, best, ok := r.truth.Routes.RIB(out.DivergedAt, netmodel.DefaultVRF).LongestMatch(flow.Dst); ok {
			out.TruthRows = best
		}
	}
	return out, nil
}

func (r *Report) truthForwarder() *traffic.Forwarder {
	eng := core.NewEngine(r.fw.Net, r.fw.TruthOpts)
	return traffic.NewForwarder(r.fw.Net, eng.IGP(), r.truth.Routes, traffic.Options{Profiles: r.fw.TruthOpts.Profiles})
}

func (r *Report) modelForwarder() *traffic.Forwarder {
	eng := core.NewEngine(r.fw.Net, r.fw.ModelOpts)
	return traffic.NewForwarder(r.fw.Net, eng.IGP(), r.model.Routes, traffic.Options{
		Profiles:   r.fw.ModelOpts.Profiles,
		IgnoreACLs: r.fw.ModelOpts.IgnoreACLs,
		IgnorePBR:  r.fw.ModelOpts.IgnorePBR,
	})
}

// Summary renders the analysis in the Figure 9 case-study style.
func (a *RootCauseAnalysis) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "link %s, flow %s\n", a.Link, a.Flow)
	fmt.Fprintf(&b, "  simulated path: %s\n", a.ModelPath)
	fmt.Fprintf(&b, "  real path:      %s\n", a.TruthPath)
	if a.DivergedAt == "" {
		b.WriteString("  forwarding agrees; investigate inputs/monitoring\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  diverges at %s\n", a.DivergedAt)
	fmt.Fprintf(&b, "  simulated RIB rows at %s:\n", a.DivergedAt)
	for _, r := range a.ModelRows {
		fmt.Fprintf(&b, "    %s (igpCost=%d viaSR=%v)\n", r, r.IGPCost, r.ViaSR)
	}
	fmt.Fprintf(&b, "  real RIB rows at %s:\n", a.DivergedAt)
	for _, r := range a.TruthRows {
		fmt.Fprintf(&b, "    %s (igpCost=%d viaSR=%v)\n", r, r.IGPCost, r.ViaSR)
	}
	return b.String()
}
