// Package diagnosis implements Hoyan's accuracy-diagnosis framework (§5):
// daily automatic accuracy validation by cross-checking the simulated RIBs
// and link loads against the monitoring systems and the live network, plus
// the hybrid root-cause-analysis workflow that localizes where a
// mis-simulated flow's forwarding diverges.
//
// In this reproduction the "live network" is a ground-truth simulation run
// with faithful vendor profiles and no injected implementation flaws; the
// "Hoyan under test" runs with deliberately mutated profiles or flawed
// options. Differential comparison between the two is exactly how the
// production framework surfaced the 16 VSBs of Table 5 and the issue classes
// of Table 4.
package diagnosis

import (
	"fmt"
	"strings"

	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/monitor"
	"hoyan/internal/netmodel"
	"slices"
)

// Framework runs the daily validation of Figure 2's right-hand side.
type Framework struct {
	// Net is the network snapshot (configurations + topology).
	Net *config.Network
	// Inputs and Flows are the monitored simulation inputs.
	Inputs []netmodel.Route
	Flows  []netmodel.Flow

	// TruthOpts configures the ground-truth ("live network") simulation;
	// normally the zero Options (faithful profiles).
	TruthOpts core.Options
	// ModelOpts configures the Hoyan model under test; the accuracy
	// campaign injects flaws here.
	ModelOpts core.Options

	// RouteMon and TrafficMon stand between the ground truth and the
	// comparison, reproducing monitoring blind spots and faults.
	RouteMon   *monitor.RouteMonitor
	TrafficMon *monitor.TrafficMonitor

	// HighPriorityPrefixes are compared against the live network directly
	// (the guarded "show command" path), catching what monitoring misses.
	HighPriorityPrefixes []string

	// LoadTolerance flags links whose |simulated-monitored| load exceeds
	// this fraction of the link bandwidth (the paper uses 10%).
	LoadTolerance float64

	// mutateModelNet, when set by the issue-injection campaign, damages the
	// model's copy of the network (parsing flaws, stale data) while the
	// live network stays intact.
	mutateModelNet func(*config.Network)
	// filterModelInputs models input-route-building flaws: the model
	// simulates a filtered input set while the live network carries all.
	filterModelInputs func([]netmodel.Route) []netmodel.Route
}

// RouteDiff is one route-level discrepancy.
type RouteDiff struct {
	Kind  string // "missing" (in monitor, not simulated), "extra", "attr"
	Route netmodel.Route
	Via   string // "monitoring" or "live-show"
}

// LoadDiff is one link-load discrepancy.
type LoadDiff struct {
	Link      netmodel.LinkID
	Simulated float64
	Monitored float64
	Bandwidth float64
}

// Report is the daily accuracy report.
type Report struct {
	RouteDiffs []RouteDiff
	LoadDiffs  []LoadDiff

	// Accurate is true when no discrepancy was found.
	Accurate bool

	// internal state for root-cause analysis
	truth *core.Result
	model *core.Result
	fw    *Framework
}

// Run performs the daily validation: simulate with the model under test,
// collect ground truth through the monitors, compare.
func (f *Framework) Run() *Report {
	if f.LoadTolerance == 0 {
		f.LoadTolerance = 0.10
	}
	if f.RouteMon == nil {
		f.RouteMon = &monitor.RouteMonitor{}
	}
	if f.TrafficMon == nil {
		f.TrafficMon = &monitor.TrafficMonitor{}
	}

	truthEng := core.NewEngine(f.Net, f.TruthOpts)
	truth := truthEng.Run(f.Inputs, f.Flows)

	modelNet := f.Net
	if f.mutateModelNet != nil {
		modelNet = f.Net.Clone()
		f.mutateModelNet(modelNet)
	}
	modelInputs := f.Inputs
	if f.filterModelInputs != nil {
		modelInputs = f.filterModelInputs(f.Inputs)
	}
	modelEng := core.NewEngine(modelNet, f.ModelOpts)
	model := modelEng.Run(modelInputs, f.Flows)

	rep := &Report{truth: truth, model: model, fw: f}

	// 1. Route comparison against the monitoring system: restricted to what
	// the monitor can see (best routes, propagating attributes).
	monRIB := f.RouteMon.Collect(truth.Routes.GlobalRIB())
	// The simulated side goes through the same *projection* (best-only,
	// non-propagating attributes hidden) but not through the monitor's
	// faults: a failed agent loses real data, not simulated data.
	projection := &monitor.RouteMonitor{BMPDevices: f.RouteMon.BMPDevices}
	simRIB := projection.Collect(model.Routes.GlobalRIB())
	simOnly, monOnly := simRIB.Diff(monRIB)
	for _, r := range simOnly {
		rep.RouteDiffs = append(rep.RouteDiffs, RouteDiff{Kind: "extra", Route: r, Via: "monitoring"})
	}
	for _, r := range monOnly {
		rep.RouteDiffs = append(rep.RouteDiffs, RouteDiff{Kind: "missing", Route: r, Via: "monitoring"})
	}

	// 2. Live-network comparison for high-priority prefixes: full fidelity
	// including ECMP siblings and local attributes.
	if len(f.HighPriorityPrefixes) > 0 {
		live := netmodel.NewGlobalRIB(monitor.LiveShow(truth.Routes.GlobalRIB(), f.HighPriorityPrefixes))
		sim := netmodel.NewGlobalRIB(monitor.LiveShow(model.Routes.GlobalRIB(), f.HighPriorityPrefixes))
		simOnly, liveOnly := sim.Diff(live)
		for _, r := range simOnly {
			rep.RouteDiffs = append(rep.RouteDiffs, RouteDiff{Kind: "extra", Route: r, Via: "live-show"})
		}
		for _, r := range liveOnly {
			rep.RouteDiffs = append(rep.RouteDiffs, RouteDiff{Kind: "missing", Route: r, Via: "live-show"})
		}
	}

	// 3. Traffic load comparison against SNMP counters.
	if truth.Traffic != nil && model.Traffic != nil {
		monLoad := f.TrafficMon.CollectLoads(truth.Traffic.Traffic.Load)
		simLoad := model.Traffic.Traffic.Load
		ids := map[netmodel.LinkID]bool{}
		for id := range monLoad {
			ids[id] = true
		}
		for id := range simLoad {
			ids[id] = true
		}
		ordered := make([]netmodel.LinkID, 0, len(ids))
		for id := range ids {
			ordered = append(ordered, id)
		}
		slices.SortFunc(ordered, func(a, b netmodel.LinkID) int { return strings.Compare(a.String(), b.String()) })
		for _, id := range ordered {
			bw := 1e9
			if l := f.Net.Topo.Link(id); l != nil && l.Bandwidth > 0 {
				bw = l.Bandwidth
			}
			diff := simLoad[id] - monLoad[id]
			if diff < 0 {
				diff = -diff
			}
			if diff > f.LoadTolerance*bw {
				rep.LoadDiffs = append(rep.LoadDiffs, LoadDiff{
					Link: id, Simulated: simLoad[id], Monitored: monLoad[id], Bandwidth: bw,
				})
			}
		}
	}

	rep.Accurate = len(rep.RouteDiffs) == 0 && len(rep.LoadDiffs) == 0
	return rep
}

// Summary renders the accuracy report.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "accuracy report: %d route diffs, %d load diffs\n", len(r.RouteDiffs), len(r.LoadDiffs))
	for i, d := range r.RouteDiffs {
		if i >= 10 {
			fmt.Fprintf(&b, "  ... %d more route diffs\n", len(r.RouteDiffs)-i)
			break
		}
		fmt.Fprintf(&b, "  [%s via %s] %s\n", d.Kind, d.Via, d.Route)
	}
	for _, d := range r.LoadDiffs {
		fmt.Fprintf(&b, "  [load] %s: simulated %.0f vs monitored %.0f (bw %.0f)\n",
			d.Link, d.Simulated, d.Monitored, d.Bandwidth)
	}
	return b.String()
}
