// Package change models network change plans: the 12 change types of
// Table 2, each consisting of topology deltas and per-device configuration
// command blocks written in the device's own vendor dialect. Applying a plan
// clones the pre-computed base network model and updates it incrementally
// (§2.2's "constructs the updated network model incrementally").
package change

import (
	"fmt"
	"net/netip"

	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/netmodel"
)

// Type enumerates the change types of Table 2.
type Type string

// The 12 change types. Starred types in the paper (requiring control-plane
// route change intents) are marked in the comment.
const (
	OSUpgrade         Type = "os-upgrade"        // *
	OSPatch           Type = "os-patch"          // *
	RouteAttrModify   Type = "route-attr-modify" // *
	StaticRouteModify Type = "static-route-modify"
	PBRModify         Type = "pbr-modify"
	ACLModify         Type = "acl-modify"
	AddLinks          Type = "add-links"   // *
	AddRouters        Type = "add-routers" // *
	TopologyAdjust    Type = "topology-adjust"
	NewPrefix         Type = "new-prefix"
	PrefixReclamation Type = "prefix-reclamation"
	TrafficSteering   Type = "traffic-steering" // *
)

// AllTypes lists every change type in Table 2 order.
var AllTypes = []Type{
	OSUpgrade, OSPatch, RouteAttrModify, StaticRouteModify, PBRModify,
	ACLModify, AddLinks, AddRouters, TopologyAdjust, NewPrefix,
	PrefixReclamation, TrafficSteering,
}

// NeedsRouteIntent reports whether the change type requires control-plane
// route change intent specification (the * rows of Table 2).
func (t Type) NeedsRouteIntent() bool {
	switch t {
	case OSUpgrade, OSPatch, RouteAttrModify, AddLinks, AddRouters, TrafficSteering:
		return true
	}
	return false
}

// LinkUpDown toggles a link's administrative state.
type LinkUpDown struct {
	ID netmodel.LinkID
	Up bool
}

// NodeUpDown toggles a router's administrative state (maintenance).
type NodeUpDown struct {
	Name string
	Up   bool
}

// Plan is one change plan as submitted for verification.
type Plan struct {
	ID          string
	Type        Type
	Description string

	// Commands maps device name to a block of configuration commands in the
	// device's own dialect (typically a few hundred to a few thousand
	// lines on the production WAN).
	Commands map[string]string

	// Topology deltas.
	AddNodes    []AddNode
	AddLinks    []netmodel.Link
	RemoveLinks []netmodel.LinkID
	RemoveNodes []string
	SetLinks    []LinkUpDown
	SetNodes    []NodeUpDown

	// NewConfigs introduces entire new devices (add-routers change type):
	// full configuration texts parsed from scratch.
	NewConfigs map[string]string

	// NewInputs are additional input routes injected for the simulation
	// (new prefix announcement).
	NewInputs []netmodel.Route

	// DropInputs removes existing input routes whose prefix matches
	// (prefix reclamation).
	DropInputs []netmodel.Route
}

// CommandLines counts the total command lines of the plan, for reporting.
func (p *Plan) CommandLines() int {
	n := 0
	for _, block := range p.Commands {
		for _, line := range splitNonEmpty(block) {
			_ = line
			n++
		}
	}
	return n
}

func splitNonEmpty(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			line := s[start:i]
			trimmed := ""
			for _, c := range line {
				if c != ' ' && c != '\t' && c != '\r' {
					trimmed = line
					break
				}
			}
			if trimmed != "" {
				out = append(out, line)
			}
			start = i + 1
		}
	}
	return out
}

// Apply produces the updated network model: a deep copy of base with the
// plan's commands and topology deltas applied. The base model is never
// modified.
func (p *Plan) Apply(base *config.Network) (*config.Network, error) {
	updated := base.Clone()

	// New devices first, so commands may also target them.
	for name, text := range p.NewConfigs {
		d, err := config.ParseDevice(name, text)
		if err != nil {
			return nil, fmt.Errorf("change %s: parsing new device %s: %w", p.ID, name, err)
		}
		updated.Devices[d.Name] = d
	}
	for _, n := range p.AddNodes {
		updated.Topo.AddNode(netmodel.Node{Name: n.Name, Loopback: n.Loopback})
	}
	for _, l := range p.AddLinks {
		nl := updated.Topo.AddLink(l)
		// Register the link interfaces on both devices when they exist.
		registerLinkInterfaces(updated, nl)
	}
	for _, id := range p.RemoveLinks {
		if !updated.Topo.RemoveLink(id) {
			return nil, fmt.Errorf("change %s: link %s not found", p.ID, id)
		}
	}
	for _, name := range p.RemoveNodes {
		updated.Topo.RemoveNode(name)
		delete(updated.Devices, name)
	}
	for _, s := range p.SetLinks {
		if !updated.Topo.SetLinkUp(s.ID, s.Up) {
			return nil, fmt.Errorf("change %s: link %s not found", p.ID, s.ID)
		}
	}
	for _, s := range p.SetNodes {
		if !updated.Topo.SetNodeUp(s.Name, s.Up) {
			return nil, fmt.Errorf("change %s: device %s not found", p.ID, s.Name)
		}
	}

	for device, commands := range p.Commands {
		d, ok := updated.Devices[device]
		if !ok {
			// Typos in router names are one of Table 6's top root causes;
			// real CLIs reject them, so the plan fails to apply.
			return nil, fmt.Errorf("change %s: unknown device %q in commands", p.ID, device)
		}
		if err := config.ApplyCommands(d, commands); err != nil {
			return nil, fmt.Errorf("change %s: %w", p.ID, err)
		}
	}
	return updated, nil
}

// AddNode declares a new topology node.
type AddNode struct {
	Name     string
	Loopback netip.Addr
}

// prefixFor pairs an interface address with its subnet length.
func prefixFor(addr netip.Addr, subnet netip.Prefix) netip.Prefix {
	if !addr.IsValid() {
		return netip.Prefix{}
	}
	bits := addr.BitLen()
	if subnet.IsValid() {
		bits = subnet.Bits()
	}
	return netip.PrefixFrom(addr, bits)
}

func registerLinkInterfaces(net *config.Network, l *netmodel.Link) {
	if d, ok := net.Devices[l.A]; ok {
		if _, exists := d.Interfaces[l.AIface]; !exists {
			d.Interfaces[l.AIface] = &config.Interface{Name: l.AIface, Addr: prefixFor(l.AAddr, l.ANet), ISISCost: l.CostAB, Bandwidth: l.Bandwidth}
		}
	}
	if d, ok := net.Devices[l.B]; ok {
		if _, exists := d.Interfaces[l.BIface]; !exists {
			d.Interfaces[l.BIface] = &config.Interface{Name: l.BIface, Addr: prefixFor(l.BAddr, l.BNet), ISISCost: l.CostBA, Bandwidth: l.Bandwidth}
		}
	}
}

// Delta expresses the plan as an engine fork delta when it consists purely
// of up/down toggles and input-route changes. Plans with configuration
// commands, new devices, or structural topology edits (anything that alters
// the parsed models) return ok=false and must go through Apply plus a full
// simulation.
func (p *Plan) Delta() (core.Delta, bool) {
	if len(p.Commands) > 0 || len(p.NewConfigs) > 0 || len(p.AddNodes) > 0 ||
		len(p.AddLinks) > 0 || len(p.RemoveLinks) > 0 || len(p.RemoveNodes) > 0 {
		return core.Delta{}, false
	}
	var d core.Delta
	for _, s := range p.SetLinks {
		if s.Up {
			d.LinksUp = append(d.LinksUp, s.ID)
		} else {
			d.LinksDown = append(d.LinksDown, s.ID)
		}
	}
	for _, s := range p.SetNodes {
		if s.Up {
			d.NodesUp = append(d.NodesUp, s.Name)
		} else {
			d.NodesDown = append(d.NodesDown, s.Name)
		}
	}
	d.AddInputs = p.NewInputs
	d.DropInputs = p.DropInputs
	return d, true
}

// ApplyInputs adjusts the input route set per the plan: reclaimed prefixes
// are dropped, newly announced ones appended.
func (p *Plan) ApplyInputs(inputs []netmodel.Route) []netmodel.Route {
	drop := make(map[netmodel.RouteKey]bool, len(p.DropInputs))
	for _, r := range p.DropInputs {
		drop[r.Key()] = true
	}
	var out []netmodel.Route
	for _, r := range inputs {
		if !drop[r.Key()] {
			out = append(out, r)
		}
	}
	return append(out, p.NewInputs...)
}
