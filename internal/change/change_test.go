package change

import (
	"net/netip"
	"strings"
	"testing"

	"hoyan/internal/gen"
	"hoyan/internal/netmodel"
)

func TestAllTypesCatalogued(t *testing.T) {
	if len(AllTypes) != 12 {
		t.Fatalf("change types = %d, want 12 (Table 2)", len(AllTypes))
	}
	starred := 0
	for _, typ := range AllTypes {
		if typ.NeedsRouteIntent() {
			starred++
		}
	}
	if starred != 6 {
		t.Errorf("starred types = %d, want 6 (Table 2)", starred)
	}
}

func TestApplyDoesNotMutateBase(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	before := len(out.Net.Devices["border-0-1"].Statics)
	plan := &Plan{
		ID: "t", Type: StaticRouteModify,
		Commands: map[string]string{"border-0-1": "ip route 192.0.2.0/24 " + out.Net.Devices["core-0-0"].Loopback.String() + "\n"},
	}
	updated, err := plan.Apply(out.Net)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Net.Devices["border-0-1"].Statics) != before {
		t.Error("base model mutated")
	}
	if len(updated.Devices["border-0-1"].Statics) != before+1 {
		t.Error("updated model missing the static")
	}
}

func TestApplyUnknownDeviceFails(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	plan := &Plan{ID: "t", Commands: map[string]string{"no-such-router": "isis enable\n"}}
	if _, err := plan.Apply(out.Net); err == nil || !strings.Contains(err.Error(), "unknown device") {
		t.Errorf("want unknown-device error, got %v", err)
	}
}

func TestApplyTopologyDeltas(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	base := netip.MustParseAddr("172.31.9.0")
	plan := &Plan{
		ID: "t", Type: AddLinks,
		AddLinks: []netmodel.Link{{
			A: "core-0-0", B: "core-1-0", AIface: "x-a", BIface: "x-b",
			ANet: netip.PrefixFrom(base, 30), BNet: netip.PrefixFrom(base, 30),
			AAddr: base.Next(), BAddr: base.Next().Next(),
			CostAB: 5, CostBA: 5, Bandwidth: 1e9,
		}},
		SetNodes: []NodeUpDown{{Name: "dc-2-1", Up: false}},
	}
	updated, err := plan.Apply(out.Net)
	if err != nil {
		t.Fatal(err)
	}
	id := netmodel.LinkID{A: "core-0-0", B: "core-1-0", AIface: "x-a", BIface: "x-b"}
	if updated.Topo.Link(id) == nil {
		t.Error("link not added")
	}
	// Interfaces registered on both devices.
	if updated.Devices["core-0-0"].Interfaces["x-a"] == nil || updated.Devices["core-1-0"].Interfaces["x-b"] == nil {
		t.Error("link interfaces not registered")
	}
	if updated.Topo.Node("dc-2-1").Up {
		t.Error("node not taken down")
	}
	if !out.Net.Topo.Node("dc-2-1").Up {
		t.Error("base node mutated")
	}
	// Removing an unknown link errors.
	bad := &Plan{ID: "t2", RemoveLinks: []netmodel.LinkID{{A: "x", B: "y"}}}
	if _, err := bad.Apply(out.Net); err == nil {
		t.Error("want error for unknown link")
	}
}

func TestApplyNewConfigs(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	plan := &Plan{
		ID: "t", Type: AddRouters,
		NewConfigs: map[string]string{"newbie": "hostname newbie\nvendor alpha\nasn 65000\nloopback 100.64.9.9\n"},
		AddNodes:   []AddNode{{Name: "newbie", Loopback: netip.MustParseAddr("100.64.9.9")}},
	}
	updated, err := plan.Apply(out.Net)
	if err != nil {
		t.Fatal(err)
	}
	if updated.Devices["newbie"] == nil || updated.Topo.Node("newbie") == nil {
		t.Error("new device missing")
	}
	if out.Net.Devices["newbie"] != nil {
		t.Error("base gained the device")
	}
	bad := &Plan{ID: "t2", NewConfigs: map[string]string{"x": "garbage\n"}}
	if _, err := bad.Apply(out.Net); err == nil {
		t.Error("want parse error for bad new config")
	}
}

func TestApplyInputs(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	victim := out.Inputs[0]
	extra := netmodel.Route{
		Device: "dc-0-0", VRF: netmodel.DefaultVRF,
		Prefix: netip.MustParsePrefix("10.99.0.0/24"), Protocol: netmodel.ProtoBGP,
	}
	plan := &Plan{DropInputs: []netmodel.Route{victim}, NewInputs: []netmodel.Route{extra}}
	got := plan.ApplyInputs(out.Inputs)
	if len(got) != len(out.Inputs) {
		t.Fatalf("len = %d, want %d (one dropped, one added)", len(got), len(out.Inputs))
	}
	for _, r := range got {
		if r.Key() == victim.Key() {
			t.Error("victim still present")
		}
	}
	if got[len(got)-1].Prefix != extra.Prefix {
		t.Error("new input missing")
	}
}

func TestCommandLines(t *testing.T) {
	p := &Plan{Commands: map[string]string{
		"a": "line1\n\n line2\n",
		"b": "x\n",
	}}
	if n := p.CommandLines(); n != 3 {
		t.Errorf("CommandLines = %d, want 3", n)
	}
}
