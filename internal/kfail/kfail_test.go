package kfail

import (
	"net/netip"
	"reflect"
	"testing"

	"hoyan/internal/core"
	"hoyan/internal/gen"
	"hoyan/internal/intent"
	"hoyan/internal/netmodel"
	"hoyan/internal/telemetry"
)

func TestSingleFailureToleranceOfGeneratedWAN(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	// Property: region 0's first DC prefix stays reachable on the remote
	// RR under any single core-fabric link failure.
	reach := intent.ReachIntent{
		Prefix:  netip.MustParsePrefix("10.0.0.0/24"),
		Devices: []string{"rr-1-0"},
		Want:    true,
	}
	// Candidate failures: dual-homed uplinks of dc-0-0 (one at a time).
	var elems []Element
	for _, l := range out.Net.Topo.LinksOf("dc-0-0") {
		elems = append(elems, Element{Link: l.ID()})
	}
	res, err := Check(out.Net, out.Inputs, nil, []intent.Intent{reach}, Options{K: 1, Elements: elems})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios != len(elems) {
		t.Errorf("scenarios = %d, want %d", res.Scenarios, len(elems))
	}
	if !res.OK() {
		t.Errorf("dual-homed DC must tolerate any single uplink failure: %+v", res.Violations)
	}
}

func TestDoubleFailureViolationFound(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	reach := intent.ReachIntent{
		Prefix:  netip.MustParsePrefix("10.0.0.0/24"),
		Devices: []string{"rr-1-0"},
		Want:    true,
	}
	var elems []Element
	for _, l := range out.Net.Topo.LinksOf("dc-0-0") {
		elems = append(elems, Element{Link: l.ID()})
	}
	if len(elems) != 2 {
		t.Fatalf("dc-0-0 should be dual-homed, has %d links", len(elems))
	}
	// K=2 includes the scenario where both uplinks fail: the DC is cut off.
	res, err := Check(out.Net, out.Inputs, nil, []intent.Intent{reach}, Options{K: 2, Elements: elems})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios != 3 { // C(2,1)+C(2,2)
		t.Errorf("scenarios = %d, want 3", res.Scenarios)
	}
	if res.OK() {
		t.Fatal("double uplink failure must violate reachability")
	}
	v := res.Violations[0]
	if len(v.Failed) != 2 {
		t.Errorf("violating scenario = %v, want both uplinks", v.Failed)
	}
}

func TestNodeFailureElements(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	reach := intent.ReachIntent{
		Prefix:  netip.MustParsePrefix("10.0.0.0/24"),
		Devices: []string{"rr-1-0"},
		Want:    true,
	}
	res, err := Check(out.Net, out.Inputs, nil, []intent.Intent{reach},
		Options{K: 1, Elements: []Element{{Node: "dc-0-0"}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Error("failing the injecting DC gateway must violate reachability")
	}
}

func TestMaxScenariosCap(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	reach := intent.ReachIntent{Prefix: netip.MustParsePrefix("10.0.0.0/24"), Devices: []string{"rr-0-0"}, Want: true}
	res, err := Check(out.Net, out.Inputs, nil, []intent.Intent{reach},
		Options{K: 1, MaxScenarios: 3, Sim: core.Options{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios != 3 {
		t.Errorf("scenarios = %d, want capped at 3", res.Scenarios)
	}
}

func TestBadK(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	if _, err := Check(out.Net, out.Inputs, nil, nil, Options{K: 0}); err == nil {
		t.Error("K=0 must error")
	}
}

var _ = netmodel.DefaultVRF

// TestShardedCheckMatchesWholeNetwork runs the same k-failure check with the
// sharded verifier on and off: scenario counts, violation sets, and per-link
// loads behind the intents must agree exactly, with and without flows and at
// both parallelism settings.
func TestShardedCheckMatchesWholeNetwork(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	reach := intent.ReachIntent{
		Prefix:  netip.MustParsePrefix("10.0.0.0/24"),
		Devices: []string{"rr-1-0"},
		Want:    true,
	}
	loads := intent.LoadIntent{MaxUtilization: 0.95}
	intents := []intent.Intent{reach, loads}
	for _, par := range []int{1, 4} {
		ref, err := Check(out.Net, out.Inputs, out.Flows, intents, Options{
			K: 1, Parallelism: par, Sim: core.Options{},
		})
		if err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		got, err := Check(out.Net, out.Inputs, out.Flows, intents, Options{
			K: 1, Parallelism: par, Shards: 3, Registry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Scenarios != ref.Scenarios {
			t.Fatalf("par=%d: scenarios %d != %d", par, got.Scenarios, ref.Scenarios)
		}
		if len(got.Violations) != len(ref.Violations) {
			t.Fatalf("par=%d: violations %d != %d", par, len(got.Violations), len(ref.Violations))
		}
		for i := range got.Violations {
			if !reflect.DeepEqual(got.Violations[i].Failed, ref.Violations[i].Failed) {
				t.Errorf("par=%d: violation %d failed-set differs: %v vs %v",
					par, i, got.Violations[i].Failed, ref.Violations[i].Failed)
			}
		}
		// The sharded path actually carried scenarios (not all fallbacks).
		carried := 0.0
		for _, m := range reg.Gather() {
			if m.Name == "kfail_shard_scenarios_total" {
				carried = m.Value
			}
		}
		if carried == 0 {
			t.Errorf("par=%d: no scenario rode the sharded path", par)
		}
	}
}
