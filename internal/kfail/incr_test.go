package kfail

import (
	"net/netip"
	"reflect"
	"testing"

	"hoyan/internal/core"
	"hoyan/internal/gen"
	"hoyan/internal/intent"
	"hoyan/internal/netmodel"
	"hoyan/internal/telemetry"
)

// wanCheckInputs builds a check over every link of the generated WAN with a
// property that some double failures violate, so result comparisons exercise
// both outcomes.
func wanCheckInputs() (*gen.Output, []intent.Intent) {
	out := gen.Generate(gen.WAN(1))
	reach := intent.ReachIntent{
		Prefix:  netip.MustParsePrefix("10.0.0.0/24"),
		Devices: []string{"rr-1-0"},
		Want:    true,
	}
	return out, []intent.Intent{reach}
}

func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Scenarios != b.Scenarios {
		t.Fatalf("%s: scenario counts differ: %d vs %d", label, a.Scenarios, b.Scenarios)
	}
	if !reflect.DeepEqual(a.Violations, b.Violations) {
		t.Fatalf("%s: violations differ:\n%+v\nvs\n%+v", label, a.Violations, b.Violations)
	}
}

// TestIncrementalMatchesFromScratch pins the correctness bar: the incremental
// fork path and the DisableIncremental reference path must return identical
// violations over a K=2 sweep that mixes link and node failures.
func TestIncrementalMatchesFromScratch(t *testing.T) {
	out, intents := wanCheckInputs()
	elems := []Element{{Node: "dc-0-0"}}
	for _, l := range out.Net.Topo.LinksOf("dc-0-0") {
		elems = append(elems, Element{Link: l.ID()})
	}
	for _, l := range out.Net.Topo.LinksOf("rr-1-0") {
		elems = append(elems, Element{Link: l.ID()})
	}
	opts := Options{K: 2, Elements: elems}
	inc, err := Check(out.Net, out.Inputs, out.Flows, intents, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Sim.DisableIncremental = true
	ref, err := Check(out.Net, out.Inputs, out.Flows, intents, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "incremental vs from-scratch", inc, ref)
	if inc.OK() {
		t.Error("sweep should find at least one violation (double uplink cut)")
	}
}

// TestParallelMatchesSequential pins determinism: scenario-level parallelism
// must not change the result or the violation order.
func TestParallelMatchesSequential(t *testing.T) {
	out, intents := wanCheckInputs()
	opts := Options{K: 2, MaxScenarios: 60, Parallelism: 1}
	seq, err := Check(out.Net, out.Inputs, out.Flows, intents, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 4
	parRes, err := Check(out.Net, out.Inputs, out.Flows, intents, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "parallel vs sequential", seq, parRes)
}

// TestEnumerateCombosEarlyExit is the MaxScenarios regression test: hitting
// the cap must unwind the DFS outright, doing work proportional to the cap
// rather than walking all C(n, k) combinations.
func TestEnumerateCombosEarlyExit(t *testing.T) {
	combos, visited := enumerateCombos(200, 3, 10)
	if len(combos) != 10 {
		t.Fatalf("combos = %d, want 10", len(combos))
	}
	// C(200,1)+C(200,2)+C(200,3) is ~1.3M; a pre-order DFS that stops cold
	// visits barely more nodes than it emits.
	if visited > 2*10+3 {
		t.Errorf("visited %d enumeration nodes for a cap of 10 — early exit broken", visited)
	}
	// Uncapped enumeration still yields the full count.
	combos, _ = enumerateCombos(6, 2, 0)
	if want := 6 + 15; len(combos) != want { // C(6,1)+C(6,2)
		t.Errorf("uncapped combos = %d, want %d", len(combos), want)
	}
}

// TestWorkAvoidanceCounters asserts the telemetry a k-failure sweep exports:
// exact scenario counts and non-trivial reuse on the incremental path.
func TestWorkAvoidanceCounters(t *testing.T) {
	out, intents := wanCheckInputs()
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer("kfail-test")
	res, err := Check(out.Net, out.Inputs, out.Flows, intents,
		Options{K: 1, MaxScenarios: 8, Registry: reg, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("kfail_scenarios_total", "").Value(); got != int64(res.Scenarios) {
		t.Errorf("kfail_scenarios_total = %d, want %d", got, res.Scenarios)
	}
	if got := reg.Counter("incr_full_fallbacks_total", "").Value(); got != 0 {
		t.Errorf("incr_full_fallbacks_total = %d, want 0 (pure link-down deltas)", got)
	}
	if got := reg.Counter("incr_spf_sources_reused", "").Value(); got == 0 {
		t.Error("incr_spf_sources_reused stayed 0 across a sweep of single link failures")
	}
	if got := reg.Counter("incr_warm_rounds", "").Value(); got == 0 {
		t.Error("incr_warm_rounds stayed 0 — warm restarts should still run rounds")
	}
	if spans := tr.Spans(); len(spans) != res.Scenarios {
		t.Errorf("spans = %d, want one per scenario (%d)", len(spans), res.Scenarios)
	}
}

var _ = netmodel.DefaultVRF
var _ core.Options
