// Package kfail implements Hoyan's k-failure verification (§6.2): checking
// that a property still holds when no more than k routers/links have failed.
// Scenarios are enumerated exhaustively over a candidate element set (with a
// hard cap suited to the repository's scales) and simulated as incremental
// forks of the base run: each scenario toggles the failed elements on a
// reusable topology, warm-starts SPF/BGP/forwarding from the converged base
// state, and reverts the toggles — instead of cloning the network and
// recomputing from zero per combination.
package kfail

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/intent"
	"hoyan/internal/netmodel"
	"hoyan/internal/par"
	"hoyan/internal/shard"
	"hoyan/internal/telemetry"
)

// Element is one failable component.
type Element struct {
	Link netmodel.LinkID // zero value when Node is set
	Node string
}

func (e Element) String() string {
	if e.Node != "" {
		return "node:" + e.Node
	}
	return "link:" + e.Link.String()
}

// Options configures a check.
type Options struct {
	// K is the maximum number of simultaneous failures.
	K int
	// Elements are the candidate failures; empty means every link of the
	// topology.
	Elements []Element
	// MaxScenarios bounds the enumeration (0 = unlimited).
	MaxScenarios int
	// Sim holds the engine options for the simulations. Set
	// Sim.DisableIncremental to re-simulate every scenario from scratch (the
	// reference path; results are byte-identical).
	Sim core.Options
	// Parallelism fans scenarios over a worker pool (par conventions: 0 =
	// GOMAXPROCS, 1 = sequential). Each worker gets its own cloned topology;
	// per-scenario engine parallelism is forced to 1 so the machine is not
	// oversubscribed. Violation order is deterministic at any setting.
	Parallelism int
	// EngineParallelism caps the cores each scenario simulation may use when
	// the sweep itself is sequential (Parallelism 1): serve sets it to the
	// tenant's query budget so one kfail sweep cannot occupy the machine. 0
	// keeps the engine's own setting; with scenario workers > 1 it is
	// ignored — per-scenario simulation is always sequential then, including
	// warm forks off Options.Engine. Results are byte-identical regardless.
	EngineParallelism int
	// Shards, when > 1, routes contained scenarios through the sharded
	// verifier (internal/shard): a delta whose effects provably stay inside
	// its touched shards re-runs only those shards boundary-sealed,
	// warm-started from the base contract state. Uncontained scenarios fall
	// back to the incremental fork. Results are byte-identical either way.
	Shards int
	// Registry receives work-avoidance counters (kfail_scenarios_total,
	// incr_spf_sources_reused, incr_bgp_tables_dirty, incr_warm_rounds,
	// incr_flows_reused). Nil disables metrics at zero cost.
	Registry *telemetry.Registry
	// Tracer records one span per scenario. Nil disables tracing.
	Tracer *telemetry.Tracer

	// Ctx, when non-nil, cancels the check: pending scenarios are skipped,
	// in-flight ones bail out of the engine hot loops, and Check returns
	// ctx's error instead of a (partial, misleading) result.
	Ctx context.Context
	// Progress, when non-nil, is called after each completed scenario with
	// the running completion count and the total. It may be called from any
	// worker goroutine, so it must be safe for concurrent use.
	Progress func(done, total int)
	// Engine, when non-nil, supplies an engine whose BaseRun over exactly
	// these net/inputs/flows already completed; Check forks scenarios off it
	// instead of building and converging its own (the warm path a
	// long-running service takes). The sequential path toggles net in place,
	// so callers sharing the base network across queries must pass a private
	// clone.
	Engine *core.Engine
}

// Violation is one failure scenario under which an intent fails.
type Violation struct {
	Failed  []Element
	Reports []intent.Report
}

// Result summarizes a k-failure check.
type Result struct {
	Scenarios  int
	Violations []Violation
}

// OK reports whether the property held under every enumerated scenario.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// Check verifies the intents under every failure combination of at most
// Options.K elements. The intents' PRE state is the failure-free snapshot.
func Check(net *config.Network, inputs []netmodel.Route, flows []netmodel.Flow, intents []intent.Intent, o Options) (*Result, error) {
	if o.K < 1 {
		return nil, fmt.Errorf("kfail: K must be >= 1")
	}
	elements := o.Elements
	if len(elements) == 0 {
		for _, l := range net.Topo.Links() {
			elements = append(elements, Element{Link: l.ID()})
		}
	}
	combos, _ := enumerateCombos(len(elements), o.K, o.MaxScenarios)

	workers := par.Workers(o.Parallelism)
	innerOpts := o.Sim
	forkPar := o.EngineParallelism
	if workers > 1 {
		// One engine per scenario worker: keep the inner simulation
		// sequential so scenario-level parallelism owns the cores. forkPar
		// caps warm forks off a caller-supplied Engine the same way — its
		// BaseRun ran at full parallelism, but this sweep's forks must not.
		innerOpts.Parallelism = 1
		forkPar = 1
	} else if forkPar != 0 {
		innerOpts.Parallelism = forkPar
	}

	scenarios := o.Registry.Counter("kfail_scenarios_total", "k-failure scenarios simulated")
	spfReused := o.Registry.Counter("incr_spf_sources_reused", "SPF sources reused from the base run across incremental forks")
	bgpDirty := o.Registry.Counter("incr_bgp_tables_dirty", "BGP tables seeded dirty across warm-started fixpoints")
	warmRounds := o.Registry.Counter("incr_warm_rounds", "fixpoint rounds run by warm-started BGP re-simulations")
	flowsReused := o.Registry.Counter("incr_flows_reused", "flows whose base path and load were reused across incremental forks")
	fullFallbacks := o.Registry.Counter("incr_full_fallbacks_total", "scenario forks that fell back to from-scratch simulation")

	eng := o.Engine
	var baseRes *core.Result
	if eng != nil {
		if baseRes = eng.BaseResult(); baseRes == nil {
			return nil, fmt.Errorf("kfail: Options.Engine has no completed BaseRun")
		}
	} else {
		eng = core.NewEngine(net, innerOpts)
		var err error
		if baseRes, err = eng.BaseRunCtx(o.Ctx, inputs, flows); err != nil {
			return nil, err
		}
	}

	var sharded *shard.Engine
	shardScenarios := o.Registry.Counter("kfail_shard_scenarios_total", "scenarios verified through the sharded path")
	if o.Shards > 1 {
		sharded = shard.New(net, inputs, shard.Options{
			Shards:   o.Shards,
			Sim:      innerOpts,
			Registry: o.Registry,
		})
		if _, err := sharded.Base(); err != nil {
			return nil, err
		}
	}

	// Bandwidths never change under up/down toggles: share one map across
	// every snapshot.
	bw := make(map[netmodel.LinkID]float64, len(net.Topo.Links()))
	for _, l := range net.Topo.Links() {
		bw[l.ID()] = l.Bandwidth
	}
	base := snapshotFrom(baseRes, bw)

	// scratch topologies: the sequential path toggles the caller's network
	// in place (reverting after each scenario); parallel workers draw cloned
	// networks from a pool. Engine.Fork reads the passed network for all new
	// state and only ever reads the shared base capture, so concurrent forks
	// off one engine are safe.
	pool := sync.Pool{New: func() any { return net.Clone() }}

	type outcome struct {
		reports []intent.Report
		ok      bool
	}
	outcomes := make([]outcome, len(combos))
	var done atomic.Int64

	evalScenario := func(scratch *config.Network, combo []int, slot int) {
		if o.Ctx != nil && o.Ctx.Err() != nil {
			return
		}
		var delta core.Delta
		var revertLinks []netmodel.LinkID
		var revertNodes []string
		for _, idx := range combo {
			el := elements[idx]
			if el.Node != "" {
				if n := scratch.Topo.Node(el.Node); n != nil && n.Up {
					scratch.Topo.SetNodeUp(el.Node, false)
					delta.NodesDown = append(delta.NodesDown, el.Node)
					revertNodes = append(revertNodes, el.Node)
				}
			} else {
				if l := scratch.Topo.Link(el.Link); l != nil && l.Up {
					scratch.Topo.SetLinkUp(el.Link, false)
					delta.LinksDown = append(delta.LinksDown, el.Link)
					revertLinks = append(revertLinks, el.Link)
				}
			}
		}

		span := o.Tracer.StartRoot("kfail.scenario")
		span.SetTag("failed", elementNames(elements, combo))
		var snap *intent.Snapshot
		if sharded != nil {
			if sres, err := sharded.WhatIf(scratch, delta); err == nil {
				shardScenarios.Inc()
				span.SetTag("mode", "shard")
				span.SetTag("shard_rounds", fmt.Sprintf("%d", sres.Rounds))
				rows := sres.RIB.Rows()
				snap = &intent.Snapshot{RIB: sres.RIB, Bandwidth: bw}
				if len(flows) > 0 {
					tr := sres.Eng.TrafficSimulation(netmodel.NewRIBSet(rows), rows, flows)
					snap.Paths = tr.Traffic.Paths
					snap.Load = tr.Traffic.Load
				}
			}
		}
		if snap == nil {
			res, stats, err := eng.ForkCtxN(o.Ctx, scratch, delta, forkPar)
			if err != nil {
				// Cancelled mid-fork: revert the toggles so the scratch network
				// stays reusable, and leave the slot's zero outcome — Check
				// returns ctx's error below, never the partial result.
				span.End()
				for _, id := range revertLinks {
					scratch.Topo.SetLinkUp(id, true)
				}
				for _, n := range revertNodes {
					scratch.Topo.SetNodeUp(n, true)
				}
				return
			}
			if stats.Full {
				fullFallbacks.Inc()
				span.SetTag("mode", "full")
			} else {
				span.SetTag("mode", "incremental")
				span.SetTag("bgp_tables_dirty", fmt.Sprintf("%d/%d", stats.BGPTablesDirty, stats.BGPTablesTotal))
			}
			spfReused.Add(int64(stats.SPFReused))
			bgpDirty.Add(int64(stats.BGPTablesDirty))
			warmRounds.Add(int64(stats.BGPRounds))
			flowsReused.Add(int64(stats.FlowsReused))
			snap = snapshotFrom(res, bw)
		}
		span.End()

		for _, id := range revertLinks {
			scratch.Topo.SetLinkUp(id, true)
		}
		for _, n := range revertNodes {
			scratch.Topo.SetNodeUp(n, true)
		}

		scenarios.Inc()
		ctx := &intent.Context{Base: *base, Updated: *snap}
		reports, ok := intent.Verify(ctx, intents)
		outcomes[slot] = outcome{reports: reports, ok: ok}
		if o.Progress != nil {
			o.Progress(int(done.Add(1)), len(combos))
		}
	}

	if workers <= 1 {
		for i, combo := range combos {
			evalScenario(net, combo, i)
		}
	} else {
		par.ForEach(o.Parallelism, len(combos), func(i int) {
			scratch := pool.Get().(*config.Network)
			evalScenario(scratch, combos[i], i)
			pool.Put(scratch)
		})
	}

	if o.Ctx != nil && o.Ctx.Err() != nil {
		// A zero-valued outcome reads as a violation; never surface the
		// partial sweep.
		return nil, o.Ctx.Err()
	}

	res := &Result{Scenarios: len(combos)}
	for i, combo := range combos {
		if outcomes[i].ok {
			continue
		}
		failed := make([]Element, len(combo))
		for j, idx := range combo {
			failed[j] = elements[idx]
		}
		res.Violations = append(res.Violations, Violation{Failed: failed, Reports: outcomes[i].reports})
	}
	return res, nil
}

// enumerateCombos lists, in DFS pre-order, every combination of 1..k indices
// out of n, stopping the recursion outright once max combos are collected
// (max 0 = unlimited). visited counts loop expansions — the early-exit
// regression test asserts it stays proportional to max, not to C(n, k).
func enumerateCombos(n, k, max int) (combos [][]int, visited int) {
	var combo []int
	var rec func(start, remaining int) bool
	rec = func(start, remaining int) bool {
		if len(combo) > 0 {
			if max > 0 && len(combos) >= max {
				return false
			}
			combos = append(combos, append([]int(nil), combo...))
		}
		if remaining == 0 {
			return true
		}
		for i := start; i < n; i++ {
			visited++
			combo = append(combo, i)
			cont := rec(i+1, remaining-1)
			combo = combo[:len(combo)-1]
			if !cont {
				return false
			}
		}
		return true
	}
	rec(0, k)
	return combos, visited
}

func elementNames(elements []Element, combo []int) string {
	names := make([]string, len(combo))
	for i, idx := range combo {
		names[i] = elements[idx].String()
	}
	return strings.Join(names, ",")
}

func snapshotFrom(r *core.Result, bw map[netmodel.LinkID]float64) *intent.Snapshot {
	snap := &intent.Snapshot{RIBFn: r.Routes.GlobalRIB, Bandwidth: bw}
	if r.Traffic != nil {
		snap.Paths = r.Traffic.Traffic.Paths
		snap.Load = r.Traffic.Traffic.Load
	}
	return snap
}
