// Package kfail implements Hoyan's k-failure verification (§6.2): checking
// that a property still holds when no more than k routers/links have failed.
// Scenarios are enumerated exhaustively over a candidate element set and
// simulated one by one — the production system's approach with the
// scenario-pruning of [27] replaced by a hard scenario cap suited to the
// repository's scales.
package kfail

import (
	"fmt"

	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/intent"
	"hoyan/internal/netmodel"
)

// Element is one failable component.
type Element struct {
	Link netmodel.LinkID // zero value when Node is set
	Node string
}

func (e Element) String() string {
	if e.Node != "" {
		return "node:" + e.Node
	}
	return "link:" + e.Link.String()
}

// Options configures a check.
type Options struct {
	// K is the maximum number of simultaneous failures.
	K int
	// Elements are the candidate failures; empty means every link of the
	// topology.
	Elements []Element
	// MaxScenarios bounds the enumeration (0 = unlimited).
	MaxScenarios int
	// Engine options for the simulations.
	Sim core.Options
}

// Violation is one failure scenario under which an intent fails.
type Violation struct {
	Failed  []Element
	Reports []intent.Report
}

// Result summarizes a k-failure check.
type Result struct {
	Scenarios  int
	Violations []Violation
}

// OK reports whether the property held under every enumerated scenario.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// Check verifies the intents under every failure combination of at most
// Options.K elements. The intents' PRE state is the failure-free snapshot.
func Check(net *config.Network, inputs []netmodel.Route, flows []netmodel.Flow, intents []intent.Intent, o Options) (*Result, error) {
	if o.K < 1 {
		return nil, fmt.Errorf("kfail: K must be >= 1")
	}
	elements := o.Elements
	if len(elements) == 0 {
		for _, l := range net.Topo.Links() {
			elements = append(elements, Element{Link: l.ID()})
		}
	}

	base := snapshotOf(net, inputs, flows, o.Sim)
	res := &Result{}

	var combo []int
	var enumerate func(start, remaining int) error
	enumerate = func(start, remaining int) error {
		if len(combo) > 0 {
			if o.MaxScenarios > 0 && res.Scenarios >= o.MaxScenarios {
				return nil
			}
			res.Scenarios++
			failed := make([]Element, len(combo))
			damaged := net.Clone()
			for i, idx := range combo {
				e := elements[idx]
				failed[i] = e
				if e.Node != "" {
					damaged.Topo.SetNodeUp(e.Node, false)
				} else {
					damaged.Topo.SetLinkUp(e.Link, false)
				}
			}
			snap := snapshotOf(damaged, inputs, flows, o.Sim)
			ctx := &intent.Context{Base: *base, Updated: *snap}
			reports, ok := intent.Verify(ctx, intents)
			if !ok {
				res.Violations = append(res.Violations, Violation{Failed: failed, Reports: reports})
			}
		}
		if remaining == 0 {
			return nil
		}
		for i := start; i < len(elements); i++ {
			combo = append(combo, i)
			if err := enumerate(i+1, remaining-1); err != nil {
				return err
			}
			combo = combo[:len(combo)-1]
		}
		return nil
	}
	if err := enumerate(0, o.K); err != nil {
		return nil, err
	}
	return res, nil
}

func snapshotOf(net *config.Network, inputs []netmodel.Route, flows []netmodel.Flow, opts core.Options) *intent.Snapshot {
	eng := core.NewEngine(net, opts)
	r := eng.Run(inputs, flows)
	snap := &intent.Snapshot{RIB: r.Routes.GlobalRIB(), Bandwidth: map[netmodel.LinkID]float64{}}
	for _, l := range net.Topo.Links() {
		snap.Bandwidth[l.ID()] = l.Bandwidth
	}
	if r.Traffic != nil {
		snap.Paths = r.Traffic.Traffic.Paths
		snap.Load = r.Traffic.Traffic.Load
	}
	return snap
}
