package gen

import (
	"net/netip"
	"testing"

	"hoyan/internal/config"
	"hoyan/internal/netmodel"
)

func TestGenerateStructure(t *testing.T) {
	out := Generate(WAN(1))
	p := WAN(1)
	wantPerRegion := p.RRsPerRegion + p.CoresPerRegion + p.BordersPerRegion + p.DCsPerRegion + p.ISPsPerRegion
	if got := len(out.Net.Devices); got != wantPerRegion*p.Regions {
		t.Errorf("devices = %d, want %d", got, wantPerRegion*p.Regions)
	}
	// Every device has a loopback and ASN; WAN devices share the WAN ASN.
	wan, isp := 0, 0
	for _, d := range out.Net.Devices {
		if !d.Loopback.IsValid() || d.ASN == 0 {
			t.Errorf("%s incomplete: %+v", d.Name, d)
		}
		if d.ASN == wanASN {
			wan++
		} else {
			isp++
		}
	}
	if isp != p.ISPsPerRegion*p.Regions {
		t.Errorf("isp devices = %d", isp)
	}
	// Inputs and flows exist in the configured quantities.
	wantInputs := p.Regions * (p.DCsPerRegion*p.PrefixesPerDC + p.ISPsPerRegion*p.PrefixesPerISP)
	if len(out.Inputs) != wantInputs {
		t.Errorf("inputs = %d, want %d", len(out.Inputs), wantInputs)
	}
	if len(out.Flows) != p.Flows {
		t.Errorf("flows = %d, want %d", len(out.Flows), p.Flows)
	}
	// Topology is connected enough: every device has at least one link.
	for _, name := range out.Net.DeviceNames() {
		if len(out.Net.Topo.LinksOf(name)) == 0 {
			t.Errorf("%s has no links", name)
		}
	}
	// No dangling policy references.
	if issues := out.Net.Validate(); len(issues) != 0 {
		t.Errorf("validate: %v", issues)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, b := Generate(WAN(1)), Generate(WAN(1))
	at, bt := a.ConfigTexts(), b.ConfigTexts()
	if len(at) != len(bt) {
		t.Fatal("device count differs")
	}
	for name, text := range at {
		if bt[name] != text {
			t.Fatalf("config of %s differs between runs", name)
		}
	}
	if len(a.Flows) != len(b.Flows) || a.Flows[0] != b.Flows[0] {
		t.Error("flows differ")
	}
}

func TestGeneratedConfigsParse(t *testing.T) {
	out := Generate(WAN(1))
	texts := out.ConfigTexts()
	net2, err := config.BuildNetwork(texts, nil)
	if err != nil {
		t.Fatalf("generated configs must parse: %v", err)
	}
	if len(net2.Devices) != len(out.Net.Devices) {
		t.Errorf("parsed devices = %d", len(net2.Devices))
	}
	// Spot-check a border's policies survived the round trip.
	for name, d := range net2.Devices {
		orig := out.Net.Devices[name]
		if len(d.Neighbors) != len(orig.Neighbors) {
			t.Errorf("%s: neighbors %d != %d", name, len(d.Neighbors), len(orig.Neighbors))
		}
		if len(d.RouteMaps) != len(orig.RouteMaps) {
			t.Errorf("%s: route maps %d != %d", name, len(d.RouteMaps), len(orig.RouteMaps))
		}
	}
}

func TestWANDCNIsLarger(t *testing.T) {
	wan := Generate(WAN(2))
	dcn := Generate(WANDCN(2))
	if len(dcn.Net.Devices) <= len(wan.Net.Devices) {
		t.Errorf("WAN+DCN (%d) must exceed WAN (%d)", len(dcn.Net.Devices), len(wan.Net.Devices))
	}
}

func TestScaleProfilesOrdering(t *testing.T) {
	small := Generate(Scale2017())
	large := Generate(Scale2024())
	if len(large.Net.Devices) <= len(small.Net.Devices) {
		t.Error("2024 network must be larger than 2017")
	}
	if len(large.Inputs) <= len(small.Inputs) {
		t.Error("2024 inputs must exceed 2017")
	}
}

func TestUniqueLinkSubnetsAndLoopbacks(t *testing.T) {
	out := Generate(WAN(3))
	seenNet := map[netip.Prefix]bool{}
	for _, l := range out.Net.Topo.Links() {
		if seenNet[l.ANet] {
			t.Fatalf("duplicate link subnet %s", l.ANet)
		}
		seenNet[l.ANet] = true
	}
	seenLo := map[netip.Addr]bool{}
	for _, d := range out.Net.Devices {
		if seenLo[d.Loopback] {
			t.Fatalf("duplicate loopback %s", d.Loopback)
		}
		seenLo[d.Loopback] = true
	}
}

func TestInputsInjectAtExistingDevices(t *testing.T) {
	out := Generate(WAN(1))
	for _, r := range out.Inputs {
		if out.Net.Devices[r.Device] == nil {
			t.Fatalf("input %v at unknown device", r)
		}
		if r.VRF != netmodel.DefaultVRF {
			t.Errorf("unexpected vrf %q", r.VRF)
		}
	}
	for _, f := range out.Flows {
		if out.Net.Devices[f.Ingress] == nil {
			t.Fatalf("flow %v at unknown ingress", f)
		}
	}
}
