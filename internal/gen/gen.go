// Package gen generates synthetic WAN (and WAN+DCN) snapshots: topology,
// per-device vendor configurations, input routes, and input flows. It is the
// repository's substitute for Alibaba's production network (see DESIGN.md):
// seeded and deterministic, with the structural features the paper's
// evaluation depends on — regions with route reflectors, core/border/DC
// tiers, two vendor dialects, route policies, aggregates, VRFs, SR policies,
// PBR, ACLs, ISP peers, and realistic route-propagation diversity (ISP
// routes travel few hops; DC routes travel many).
package gen

import (
	"fmt"
	"math/rand"
	"net/netip"
	"strconv"
	"strings"

	"hoyan/internal/config"
	"hoyan/internal/netmodel"
	"hoyan/internal/policy"
)

// Profile sizes a synthetic network.
type Profile struct {
	Name    string
	Seed    int64
	Regions int

	CoresPerRegion   int
	BordersPerRegion int
	RRsPerRegion     int
	DCsPerRegion     int
	ISPsPerRegion    int

	// DCNCorePerRegion adds DCN core-layer routers hanging off each DC
	// gateway (the WAN+DCN profile of Figure 1/5).
	DCNCorePerRegion int

	// PrefixesPerDC / PrefixesPerISP control input route counts.
	PrefixesPerDC  int
	PrefixesPerISP int

	// Flows is the total number of input flows.
	Flows int
}

// WAN returns a baseline WAN profile scaled by k (k=1 ≈ small test network;
// larger k grows towards the paper's >2000 routers).
func WAN(k int) Profile {
	if k < 1 {
		k = 1
	}
	return Profile{
		Name:             fmt.Sprintf("wan-x%d", k),
		Seed:             42,
		Regions:          2 + k,
		CoresPerRegion:   2 + k,
		BordersPerRegion: 2,
		RRsPerRegion:     1,
		DCsPerRegion:     2,
		ISPsPerRegion:    1,
		PrefixesPerDC:    8 * k,
		PrefixesPerISP:   6 * k,
		Flows:            200 * k,
	}
}

// WANDCN extends WAN(k) with DCN core layers (the WAN+DCN profile whose
// simulation the original centralized Hoyan could not complete).
func WANDCN(k int) Profile {
	p := WAN(k)
	p.Name = fmt.Sprintf("wan+dcn-x%d", k)
	p.DCNCorePerRegion = 4 * k
	return p
}

// Scale2017 approximates the 2017 requirement row of Table 1 (hundreds of
// routers, O(10^4) prefixes) at laptop scale.
func Scale2017() Profile { return WAN(2) }

// Scale2024 approximates the 2024 requirement row (>2000 routers, O(10^6)
// prefixes) — scaled down but proportionally larger than Scale2017.
func Scale2024() Profile { return WAN(6) }

// Output is a generated snapshot plus its simulation inputs.
type Output struct {
	Net    *config.Network
	Inputs []netmodel.Route
	Flows  []netmodel.Flow
	// Prefixes lists every generated input prefix (workload metadata).
	Prefixes []netip.Prefix
}

// builder state.
type builder struct {
	p        Profile
	rnd      *rand.Rand
	net      *config.Network
	nextLink int

	dcRouters     []string
	borderRouters []string
	ispRouters    []string
	allWAN        []string
	prefixes      []netip.Prefix
	inputs        []netmodel.Route
}

const wanASN = netmodel.ASN(65000)

// Generate builds the network and inputs for a profile.
func Generate(p Profile) *Output {
	b := &builder{p: p, rnd: rand.New(rand.NewSource(p.Seed)), net: config.NewNetwork()}
	for r := 0; r < p.Regions; r++ {
		b.buildRegion(r)
	}
	b.interRegionLinks()
	b.ibgpMesh()
	b.buildInputs()
	flows := b.buildFlows()
	return &Output{Net: b.net, Inputs: b.inputs, Flows: flows, Prefixes: b.prefixes}
}

// ConfigTexts serializes every device into its vendor dialect — the input of
// the network-model-building service.
func (o *Output) ConfigTexts() map[string]string {
	out := make(map[string]string, len(o.Net.Devices))
	for name, d := range o.Net.Devices {
		out[name] = config.Serialize(d)
	}
	return out
}

func (b *builder) vendorFor(i int) string {
	if i%2 == 0 {
		return "alpha"
	}
	return "beta"
}

func (b *builder) device(name, vendor string, asn netmodel.ASN, lo netip.Addr) *config.Device {
	d := config.NewDevice(name, vendor)
	d.ASN = asn
	d.Loopback = lo
	d.RouterID = lo
	d.ISISEnabled = asn == wanASN
	d.MaxPaths = 4
	b.net.Devices[name] = d
	b.net.Topo.AddNode(netmodel.Node{Name: name, Loopback: lo})
	return d
}

// loopback allocates loopbacks from 100.64.0.0/10: 100.64+region, class, idx.
func loopback(region, class, idx int) netip.Addr {
	return netip.AddrFrom4([4]byte{100, byte(64 + region), byte(class), byte(idx + 1)})
}

// link wires two devices with a /30 from 172.16.0.0/12.
func (b *builder) link(a, bdev string, cost uint32) {
	b.nextLink++
	v := b.nextLink * 4 // one /30 per link out of 172.16.0.0/12
	base := netip.AddrFrom4([4]byte{172, byte(16 + (v>>16)&0x0f), byte(v >> 8), byte(v)})
	aAddr := base.Next()
	bAddr := aAddr.Next()
	aIf, bIf := "to-"+bdev, "to-"+a
	b.net.Devices[a].Interfaces[aIf] = &config.Interface{Name: aIf, Addr: netip.PrefixFrom(aAddr, 30), ISISCost: cost, Bandwidth: 1e10}
	b.net.Devices[bdev].Interfaces[bIf] = &config.Interface{Name: bIf, Addr: netip.PrefixFrom(bAddr, 30), ISISCost: cost, Bandwidth: 1e10}
	b.net.Topo.AddLink(netmodel.Link{
		A: a, B: bdev, AIface: aIf, BIface: bIf,
		ANet: netip.PrefixFrom(base, 30), BNet: netip.PrefixFrom(base, 30),
		AAddr: aAddr, BAddr: bAddr,
		CostAB: cost, CostBA: cost, Bandwidth: 1e10,
	})
}

func (b *builder) buildRegion(r int) {
	p := b.p
	var cores, borders, rrs, dcs []string

	for i := 0; i < p.RRsPerRegion; i++ {
		name := fmt.Sprintf("rr-%d-%d", r, i)
		b.device(name, b.vendorFor(r+i), wanASN, loopback(r, 1, i))
		rrs = append(rrs, name)
	}
	for i := 0; i < p.CoresPerRegion; i++ {
		name := fmt.Sprintf("core-%d-%d", r, i)
		b.device(name, b.vendorFor(i), wanASN, loopback(r, 2, i))
		cores = append(cores, name)
	}
	for i := 0; i < p.BordersPerRegion; i++ {
		name := fmt.Sprintf("border-%d-%d", r, i)
		b.device(name, b.vendorFor(r+i+1), wanASN, loopback(r, 3, i))
		borders = append(borders, name)
	}
	for i := 0; i < p.DCsPerRegion; i++ {
		name := fmt.Sprintf("dc-%d-%d", r, i)
		b.device(name, b.vendorFor(i+1), wanASN, loopback(r, 4, i))
		dcs = append(dcs, name)
	}

	// Intra-region fabric: core ring, everything else dual-homed to cores.
	for i := range cores {
		b.link(cores[i], cores[(i+1)%len(cores)], 10)
	}
	attach := func(name string, idx int) {
		b.link(name, cores[idx%len(cores)], 10)
		if len(cores) > 1 {
			b.link(name, cores[(idx+1)%len(cores)], 10)
		}
	}
	for i, name := range rrs {
		attach(name, i)
	}
	for i, name := range borders {
		attach(name, i+1)
	}
	for i, name := range dcs {
		attach(name, i+2)
	}

	// ISP peers: separate AS devices linked to borders.
	for i := 0; i < p.ISPsPerRegion; i++ {
		name := fmt.Sprintf("isp-%d-%d", r, i)
		asn := netmodel.ASN(64600 + 10*r + i)
		d := b.device(name, "alpha", asn, loopback(r, 5, i))
		// The ISP's external side, covering injected routes' next hops.
		d.Interfaces["upstream"] = &config.Interface{
			Name: "upstream",
			Addr: netip.PrefixFrom(netip.AddrFrom4([4]byte{203, 0, 113, byte(r*8 + i*4 + 1)}), 30),
		}
		border := borders[i%len(borders)]
		b.link(name, border, 10)
		b.ebgpPair(border, name)
		b.ispRouters = append(b.ispRouters, name)
	}

	// DCN core layer (WAN+DCN profile): chains below each DC gateway.
	for i := 0; i < p.DCNCorePerRegion; i++ {
		name := fmt.Sprintf("dcn-%d-%d", r, i)
		b.device(name, b.vendorFor(i), wanASN, loopback(r, 6, i))
		b.link(name, dcs[i%len(dcs)], 10)
		b.allWAN = append(b.allWAN, name)
	}

	b.configureRegionPolicies(r, borders, dcs)

	b.dcRouters = append(b.dcRouters, dcs...)
	b.borderRouters = append(b.borderRouters, borders...)
	b.allWAN = append(b.allWAN, rrs...)
	b.allWAN = append(b.allWAN, cores...)
	b.allWAN = append(b.allWAN, borders...)
	b.allWAN = append(b.allWAN, dcs...)
}

// ebgpPair configures the eBGP session between a WAN border and an ISP
// device over their direct link.
func (b *builder) ebgpPair(border, isp string) {
	l := b.net.Topo.FindLink(border, isp)
	bAddr, iAddr := l.AAddr, l.BAddr
	if l.A != border {
		bAddr, iAddr = iAddr, bAddr
	}
	db, di := b.net.Devices[border], b.net.Devices[isp]
	db.Neighbors = append(db.Neighbors, &config.Neighbor{
		Addr: iAddr, RemoteAS: di.ASN, VRF: netmodel.DefaultVRF,
		ImportPolicy: "RM_ISP_IN", ExportPolicy: "RM_ISP_OUT",
	})
	di.Neighbors = append(di.Neighbors, &config.Neighbor{
		Addr: bAddr, RemoteAS: db.ASN, VRF: netmodel.DefaultVRF,
		ImportPolicy: "RM_WAN_IN",
	})
	// ISP-side permissive import policy (so beta ISPs would also work).
	di.RouteMaps["RM_WAN_IN"] = &policy.RouteMap{Name: "RM_WAN_IN", Nodes: []*policy.Node{
		{Seq: 10, Action: policy.ActionPermit},
	}}
}

// configureRegionPolicies installs the border import/export policies and the
// per-region DC aggregates/filters.
func (b *builder) configureRegionPolicies(r int, borders, dcs []string) {
	regionComm := netmodel.NewCommunity(65000, uint16(r))
	noExport := netmodel.MustCommunity("65000:999")

	for _, name := range borders {
		d := b.net.Devices[name]
		// Bogon filter: the WAN's own DC space must not come in from ISPs.
		d.PrefixLists["PL_BOGON"] = &policy.PrefixList{Name: "PL_BOGON", Family: policy.FamilyIPv4, Entries: []policy.PrefixEntry{
			{Permit: true, Prefix: netip.MustParsePrefix("10.0.0.0/8"), Le: 32},
		}}
		d.CommunityLists["CL_NOEXPORT"] = &policy.CommunityList{Name: "CL_NOEXPORT", Entries: []policy.CommunityEntry{
			{Permit: true, Community: noExport},
		}}
		// AS-path filter for a blocked transit AS. The pattern deliberately
		// distinguishes a correct regex engine (matches the standalone AS
		// 6540 only, which never occurs) from the historically flawed
		// substring matcher (which also hits 65400/65403 — §5.3).
		d.ASPathLists["AP_BLOCKED_TRANSIT"] = &policy.ASPathList{Name: "AP_BLOCKED_TRANSIT", Entries: []policy.ASPathEntry{
			{Permit: true, Regex: `(^|.* )6540( .*|$)`},
		}}
		d.RouteMaps["RM_ISP_IN"] = &policy.RouteMap{Name: "RM_ISP_IN", Nodes: []*policy.Node{
			{Seq: 10, Action: policy.ActionDeny, Matches: []policy.Match{{Kind: policy.MatchPrefixList, ListName: "PL_BOGON"}}},
			{Seq: 12, Action: policy.ActionDeny, Matches: []policy.Match{{Kind: policy.MatchASPathList, ListName: "AP_BLOCKED_TRANSIT"}}},
			{Seq: 20, Action: policy.ActionPermit, Sets: []policy.Set{
				{Kind: policy.SetLocalPref, Value: 80},
				{Kind: policy.AddCommunity, Community: netmodel.NewCommunity(64600, uint16(r))},
			}},
		}}
		d.RouteMaps["RM_ISP_OUT"] = &policy.RouteMap{Name: "RM_ISP_OUT", Nodes: []*policy.Node{
			{Seq: 10, Action: policy.ActionDeny, Matches: []policy.Match{{Kind: policy.MatchCommunityList, ListName: "CL_NOEXPORT"}}},
			{Seq: 20, Action: policy.ActionPermit},
		}}
		// A couple of static routes toward the ISP side on even borders.
		if r%2 == 0 {
			d.Statics = append(d.Statics, config.StaticRoute{
				VRF:        netmodel.DefaultVRF,
				Prefix:     netip.MustParsePrefix(fmt.Sprintf("192.168.%d.0/24", r)),
				NextHop:    d.Loopback,
				Preference: 1,
			})
		}
	}

	for i, name := range dcs {
		d := b.net.Devices[name]
		// Per-region aggregate on the first DC gateway.
		if i == 0 {
			d.Aggregates = append(d.Aggregates, config.Aggregate{
				VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix(fmt.Sprintf("10.%d.0.0/16", r)),
			})
		}
		// Region community tag applied to everything leaving the DC gateway.
		d.RouteMaps["RM_TAG"] = &policy.RouteMap{Name: "RM_TAG", Nodes: []*policy.Node{
			{Seq: 10, Action: policy.ActionPermit, Sets: []policy.Set{
				{Kind: policy.AddCommunity, Community: regionComm},
			}},
		}}
		// One VRF per first-DC with an RT pair (exercises leaking).
		if i == 0 {
			d.VRFs["svc"] = &config.VRF{Name: "svc", RD: fmt.Sprintf("65000:%d", r),
				ImportRTs: []string{"rt-svc"}, ExportRTs: []string{"rt-svc"}}
		}
	}

	// One SR policy per region: first border steers to the next region's
	// first border.
	if len(borders) > 0 {
		d := b.net.Devices[borders[0]]
		next := (r + 1) % b.p.Regions
		d.SRPolicies = append(d.SRPolicies, &config.SRPolicy{
			Name:     fmt.Sprintf("SR-R%d", next),
			Endpoint: loopback(next, 3, 0),
			Color:    uint32(100 + next),
		})
	}
}

// interRegionLinks wires each region's cores to the next region's cores
// (ring plus one chord for diversity).
func (b *builder) interRegionLinks() {
	p := b.p
	if p.Regions < 2 {
		return
	}
	for r := 0; r < p.Regions; r++ {
		next := (r + 1) % p.Regions
		if next == r {
			continue
		}
		b.link(fmt.Sprintf("core-%d-0", r), fmt.Sprintf("core-%d-0", next), 100)
		b.link(fmt.Sprintf("core-%d-1", r), fmt.Sprintf("core-%d-1", next), 100)
	}
	if p.Regions > 3 {
		b.link("core-0-0", fmt.Sprintf("core-%d-0", p.Regions/2), 150)
	}
}

// ibgpMesh makes every WAN router an RR client of its region's reflectors
// and full-meshes the reflectors across regions.
func (b *builder) ibgpMesh() {
	p := b.p
	var allRRs []string
	for r := 0; r < p.Regions; r++ {
		for i := 0; i < p.RRsPerRegion; i++ {
			allRRs = append(allRRs, fmt.Sprintf("rr-%d-%d", r, i))
		}
	}
	session := func(a, bdev string, clientOfA bool) {
		da, db := b.net.Devices[a], b.net.Devices[bdev]
		na := &config.Neighbor{Addr: db.Loopback, RemoteAS: db.ASN, VRF: netmodel.DefaultVRF, UpdateSource: true}
		nb := &config.Neighbor{Addr: da.Loopback, RemoteAS: da.ASN, VRF: netmodel.DefaultVRF, UpdateSource: true, NextHopSelf: true}
		if clientOfA {
			na.RRClient = true
		}
		da.Neighbors = append(da.Neighbors, na)
		db.Neighbors = append(db.Neighbors, nb)
	}
	for r := 0; r < p.Regions; r++ {
		rr := fmt.Sprintf("rr-%d-0", r)
		for _, name := range b.allWAN {
			if name == rr || !inRegion(name, r) || isRR(name) {
				continue
			}
			session(rr, name, true)
		}
	}
	// RR full mesh (non-client).
	for i := 0; i < len(allRRs); i++ {
		for j := i + 1; j < len(allRRs); j++ {
			session(allRRs[i], allRRs[j], false)
		}
	}
}

func isRR(name string) bool { return strings.HasPrefix(name, "rr-") }

// inRegion parses the "<class>-<region>-<idx>" device naming convention.
func inRegion(name string, r int) bool {
	parts := strings.Split(name, "-")
	if len(parts) != 3 {
		return false
	}
	region, err := strconv.Atoi(parts[1])
	return err == nil && region == r
}

// buildInputs creates the input routes: DC prefixes injected at DC gateways
// (long AS paths within the DC fabric) and internet prefixes injected at ISP
// routers (short propagation, per §3.2's diminishing-returns discussion).
func (b *builder) buildInputs() {
	p := b.p
	for r := 0; r < p.Regions; r++ {
		for i := 0; i < p.DCsPerRegion; i++ {
			dc := fmt.Sprintf("dc-%d-%d", r, i)
			for j := 0; j < p.PrefixesPerDC; j++ {
				pr := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(r), byte(i*64 + j%64), 0}), 24)
				b.prefixes = append(b.prefixes, pr)
				route := netmodel.Route{
					Device: dc, VRF: netmodel.DefaultVRF,
					Prefix:      pr,
					Protocol:    netmodel.ProtoBGP,
					NextHop:     b.net.Devices[dc].Loopback,
					LocalPref:   100,
					Communities: netmodel.NewCommunitySet(netmodel.NewCommunity(65000, uint16(r))),
					Origin:      netmodel.OriginIGP,
					Source:      dc,
				}
				// A slice of DC routes carries the no-export community.
				if j%7 == 6 {
					route.Communities = route.Communities.Add(netmodel.MustCommunity("65000:999"))
				}
				b.inputs = append(b.inputs, route)
			}
		}
	}
	for idx, isp := range b.ispRouters {
		d := b.net.Devices[isp]
		var nh netip.Addr
		if up := d.Interfaces["upstream"]; up != nil {
			nh = up.Addr.Addr().Next()
		} else {
			nh = d.Loopback
		}
		for j := 0; j < b.p.PrefixesPerISP; j++ {
			pr := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(20 + idx%40), byte(j / 250), byte(j % 250), 0}), 24)
			b.prefixes = append(b.prefixes, pr)
			path := netmodel.ASPath{Seq: []netmodel.ASN{netmodel.ASN(65100 + j%50)}}
			if j%3 == 0 {
				path = path.Prepend(netmodel.ASN(65400 + j%20))
			}
			b.inputs = append(b.inputs, netmodel.Route{
				Device: isp, VRF: netmodel.DefaultVRF,
				Prefix:   pr,
				Protocol: netmodel.ProtoBGP,
				NextHop:  nh,
				ASPath:   path,
				Origin:   netmodel.OriginEGP,
				Source:   isp,
			})
		}
	}
}

// buildFlows samples flows: destinations drawn from the generated prefixes,
// ingress drawn from DC gateways and borders.
func (b *builder) buildFlows() []netmodel.Flow {
	ingresses := append(append([]string(nil), b.dcRouters...), b.borderRouters...)
	if len(ingresses) == 0 || len(b.prefixes) == 0 {
		return nil
	}
	// Traffic is skewed: most flows head to a small set of hot prefixes,
	// like production traffic (and like the paper's 10^9 flows over 10^6
	// prefixes). The skew is what makes the flow-EC technique effective.
	hot := len(b.prefixes) / 10
	if hot < 1 {
		hot = 1
	}
	flows := make([]netmodel.Flow, 0, b.p.Flows)
	for i := 0; i < b.p.Flows; i++ {
		var dstP netip.Prefix
		if b.rnd.Float64() < 0.7 {
			dstP = b.prefixes[b.rnd.Intn(hot)]
		} else {
			dstP = b.prefixes[b.rnd.Intn(len(b.prefixes))]
		}
		dst := dstP.Addr()
		for k := 0; k < 1+b.rnd.Intn(3); k++ {
			dst = dst.Next()
		}
		srcP := b.prefixes[b.rnd.Intn(len(b.prefixes))]
		flows = append(flows, netmodel.Flow{
			Ingress: ingresses[b.rnd.Intn(len(ingresses))],
			Src:     srcP.Addr().Next(),
			Dst:     dst,
			SrcPort: uint16(1024 + b.rnd.Intn(60000)),
			DstPort: []uint16{80, 443, 8080, 53}[b.rnd.Intn(4)],
			Proto:   netmodel.ProtoTCP,
			Volume:  float64(1+b.rnd.Intn(100)) * 1e6,
		})
	}
	return flows
}
