package faults

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"hoyan/internal/mq"
	"hoyan/internal/objstore"
	"hoyan/internal/taskdb"
)

// ErrDown is the transient error every operation on a crashed Restartable*
// wrapper returns until Reopen swaps a fresh substrate in. Retry policies
// classify it like any other unknown error: transient.
var ErrDown = errors.New("faults: substrate down (restarting)")

// Crasher is the crash hook the durable substrates expose: drop the backing
// file handles without flushing, as a killed process would.
type Crasher interface {
	CrashClose()
}

// restartState is the shared crash/reopen bookkeeping of the three wrappers.
type restartState struct {
	mu      sync.RWMutex
	down    bool
	crashes int
	downOps atomic.Int64
}

// downErr records an operation attempted while down and returns ErrDown.
func (s *restartState) downErr(op string) error {
	s.downOps.Add(1)
	return fmt.Errorf("%w: %s", ErrDown, op)
}

// Crashes reports how many times the wrapper was crashed, and how many
// operations hit the down window.
func (s *restartState) Crashes() (crashes int, downOps int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.crashes, s.downOps.Load()
}

// RestartableStore wraps an object store whose backing can be killed
// (CrashClose, as a process crash would) and reopened from its on-disk state
// mid-run. While down, every operation fails with ErrDown — a transient
// error, so retry-wrapped callers ride the restart out.
type RestartableStore struct {
	restartState
	s      objstore.Store
	reopen func() (objstore.Store, error)
}

// NewRestartableStore wraps s; reopen recovers a fresh store from the same
// on-disk state after a crash.
func NewRestartableStore(s objstore.Store, reopen func() (objstore.Store, error)) *RestartableStore {
	return &RestartableStore{s: s, reopen: reopen}
}

// Crash kills the current store: its file handles are dropped unflushed (when
// it implements Crasher) and every operation fails until Reopen.
func (r *RestartableStore) Crash() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.s.(Crasher); ok {
		c.CrashClose()
	}
	r.down = true
	r.crashes++
}

// Reopen recovers the store from disk and brings the wrapper back up.
func (r *RestartableStore) Reopen() error {
	s, err := r.reopen()
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.s, r.down = s, false
	r.mu.Unlock()
	return nil
}

// Put implements objstore.Store.
func (r *RestartableStore) Put(key string, data []byte) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.down {
		return r.downErr("store.Put")
	}
	return r.s.Put(key, data)
}

// Get implements objstore.Store.
func (r *RestartableStore) Get(key string) ([]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.down {
		return nil, r.downErr("store.Get")
	}
	return r.s.Get(key)
}

// List implements objstore.Store.
func (r *RestartableStore) List(prefix string) ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.down {
		return nil, r.downErr("store.List")
	}
	return r.s.List(prefix)
}

// Delete implements objstore.Store.
func (r *RestartableStore) Delete(key string) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.down {
		return r.downErr("store.Delete")
	}
	return r.s.Delete(key)
}

// RestartableQueue wraps a message queue with crash-and-reopen. Crashing
// wakes blocked Pop waiters (the durable queue returns its transient crash
// error, not ErrClosed, so workers survive).
type RestartableQueue struct {
	restartState
	q      mq.Queue
	reopen func() (mq.Queue, error)
}

// NewRestartableQueue wraps q; reopen recovers a fresh queue from the same
// on-disk state after a crash.
func NewRestartableQueue(q mq.Queue, reopen func() (mq.Queue, error)) *RestartableQueue {
	return &RestartableQueue{q: q, reopen: reopen}
}

// Crash kills the current queue.
func (r *RestartableQueue) Crash() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.q.(Crasher); ok {
		c.CrashClose()
	}
	r.down = true
	r.crashes++
}

// Reopen recovers the queue from disk and brings the wrapper back up.
func (r *RestartableQueue) Reopen() error {
	q, err := r.reopen()
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.q, r.down = q, false
	r.mu.Unlock()
	return nil
}

// Push implements mq.Queue.
func (r *RestartableQueue) Push(topic string, m mq.Message) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.down {
		return r.downErr("mq.Push")
	}
	return r.q.Push(topic, m)
}

// Pop implements mq.Queue. While down it fails fast — callers treat the
// error as transient and poll again, so the reopened queue picks them up.
func (r *RestartableQueue) Pop(topic string, wait time.Duration) (mq.Message, bool, error) {
	r.mu.RLock()
	q, down := r.q, r.down
	r.mu.RUnlock()
	if down {
		return mq.Message{}, false, r.downErr("mq.Pop")
	}
	// Deliberately not holding the lock across the blocking wait: Crash must
	// be able to run (and wake this waiter) while a Pop is parked.
	return q.Pop(topic, wait)
}

// Len implements mq.Queue.
func (r *RestartableQueue) Len(topic string) (int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.down {
		return 0, r.downErr("mq.Len")
	}
	return r.q.Len(topic)
}

// RestartableTasks wraps a task DB with crash-and-reopen.
type RestartableTasks struct {
	restartState
	db     taskdb.DB
	reopen func() (taskdb.DB, error)
}

// NewRestartableTasks wraps db; reopen recovers a fresh DB from the same
// on-disk state after a crash.
func NewRestartableTasks(db taskdb.DB, reopen func() (taskdb.DB, error)) *RestartableTasks {
	return &RestartableTasks{db: db, reopen: reopen}
}

// Crash kills the current task DB.
func (r *RestartableTasks) Crash() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.db.(Crasher); ok {
		c.CrashClose()
	}
	r.down = true
	r.crashes++
}

// Reopen recovers the task DB from disk and brings the wrapper back up.
func (r *RestartableTasks) Reopen() error {
	db, err := r.reopen()
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.db, r.down = db, false
	r.mu.Unlock()
	return nil
}

// Upsert implements taskdb.DB.
func (r *RestartableTasks) Upsert(rec taskdb.Record) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.down {
		return r.downErr("tasks.Upsert")
	}
	return r.db.Upsert(rec)
}

// FencedUpsert implements taskdb.DB.
func (r *RestartableTasks) FencedUpsert(rec taskdb.Record) (bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.down {
		return false, r.downErr("tasks.FencedUpsert")
	}
	return r.db.FencedUpsert(rec)
}

// Heartbeat implements taskdb.DB.
func (r *RestartableTasks) Heartbeat(taskID, kind string, subID, attempt int, at time.Time) (bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.down {
		return false, r.downErr("tasks.Heartbeat")
	}
	return r.db.Heartbeat(taskID, kind, subID, attempt, at)
}

// Get implements taskdb.DB.
func (r *RestartableTasks) Get(taskID, kind string, subID int) (taskdb.Record, bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.down {
		return taskdb.Record{}, false, r.downErr("tasks.Get")
	}
	return r.db.Get(taskID, kind, subID)
}

// List implements taskdb.DB.
func (r *RestartableTasks) List(taskID string) ([]taskdb.Record, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.down {
		return nil, r.downErr("tasks.List")
	}
	return r.db.List(taskID)
}

// TearTail truncates the last n bytes of the file at path, simulating a torn
// write: a crash that landed part of an append. n larger than the file
// truncates to empty.
func TearTail(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := fi.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// FlipByte XORs one bit-pattern (0xFF) into the byte at offset off of the
// file at path, simulating on-disk corruption. Negative offsets count back
// from the end of the file (-1 is the last byte).
func FlipByte(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if off < 0 {
		fi, err := f.Stat()
		if err != nil {
			return err
		}
		off += fi.Size()
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 0xFF
	_, err = f.WriteAt(b[:], off)
	return err
}
