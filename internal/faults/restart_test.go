package faults

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hoyan/internal/mq"
	"hoyan/internal/objstore"
	"hoyan/internal/taskdb"
)

// TestRestartableDownWindow checks the three wrappers fail every operation
// with ErrDown while crashed and come back after Reopen — with state served
// by whatever the reopen hook recovered.
func TestRestartableDownWindow(t *testing.T) {
	store := NewRestartableStore(objstore.NewMemory(), func() (objstore.Store, error) {
		s := objstore.NewMemory()
		if err := s.Put("recovered", []byte("x")); err != nil {
			return nil, err
		}
		return s, nil
	})
	if err := store.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	store.Crash()
	if err := store.Put("a", []byte("2")); !errors.Is(err, ErrDown) {
		t.Fatalf("Put while down: %v, want ErrDown", err)
	}
	if _, err := store.Get("a"); !errors.Is(err, ErrDown) {
		t.Fatalf("Get while down: %v, want ErrDown", err)
	}
	if _, err := store.List(""); !errors.Is(err, ErrDown) {
		t.Fatalf("List while down: %v, want ErrDown", err)
	}
	if err := store.Delete("a"); !errors.Is(err, ErrDown) {
		t.Fatalf("Delete while down: %v, want ErrDown", err)
	}
	if err := store.Reopen(); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get("recovered"); err != nil {
		t.Fatalf("Get after reopen: %v", err)
	}
	if crashes, downOps := store.Crashes(); crashes != 1 || downOps != 4 {
		t.Errorf("Crashes() = %d, %d; want 1, 4", crashes, downOps)
	}

	q := NewRestartableQueue(mq.NewMemory(), func() (mq.Queue, error) {
		return mq.NewMemory(), nil
	})
	q.Crash()
	if err := q.Push("t", mq.Message{ID: "m"}); !errors.Is(err, ErrDown) {
		t.Fatalf("Push while down: %v, want ErrDown", err)
	}
	if _, _, err := q.Pop("t", time.Millisecond); !errors.Is(err, ErrDown) {
		t.Fatalf("Pop while down: %v, want ErrDown", err)
	}
	if _, err := q.Len("t"); !errors.Is(err, ErrDown) {
		t.Fatalf("Len while down: %v, want ErrDown", err)
	}
	if err := q.Reopen(); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("t", mq.Message{ID: "m"}); err != nil {
		t.Fatalf("Push after reopen: %v", err)
	}

	db := NewRestartableTasks(taskdb.NewMemory(), func() (taskdb.DB, error) {
		return taskdb.NewMemory(), nil
	})
	db.Crash()
	if err := db.Upsert(taskdb.Record{TaskID: "t"}); !errors.Is(err, ErrDown) {
		t.Fatalf("Upsert while down: %v, want ErrDown", err)
	}
	if _, err := db.FencedUpsert(taskdb.Record{TaskID: "t"}); !errors.Is(err, ErrDown) {
		t.Fatalf("FencedUpsert while down: %v, want ErrDown", err)
	}
	if _, err := db.Heartbeat("t", "route", 0, 0, time.Now()); !errors.Is(err, ErrDown) {
		t.Fatalf("Heartbeat while down: %v, want ErrDown", err)
	}
	if _, _, err := db.Get("t", "route", 0); !errors.Is(err, ErrDown) {
		t.Fatalf("Get while down: %v, want ErrDown", err)
	}
	if _, err := db.List("t"); !errors.Is(err, ErrDown) {
		t.Fatalf("List while down: %v, want ErrDown", err)
	}
	if err := db.Reopen(); err != nil {
		t.Fatal(err)
	}
	if err := db.Upsert(taskdb.Record{TaskID: "t"}); err != nil {
		t.Fatalf("Upsert after reopen: %v", err)
	}
}

// TestTearTailAndFlipByte pins the file-corruption helpers the restart chaos
// tests build on.
func TestTearTailAndFlipByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TearTail(path, 3); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "0123456" {
		t.Fatalf("after TearTail(3): %q", got)
	}
	if err := TearTail(path, 100); err != nil {
		t.Fatal(err)
	}
	if got, _ = os.ReadFile(path); len(got) != 0 {
		t.Fatalf("TearTail past start left %q", got)
	}

	if err := os.WriteFile(path, []byte{0x00, 0x10, 0x20}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipByte(path, 1); err != nil {
		t.Fatal(err)
	}
	if err := FlipByte(path, -1); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if got[0] != 0x00 || got[1] != 0xEF || got[2] != 0xDF {
		t.Fatalf("after flips: %x", got)
	}
}
