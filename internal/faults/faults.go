// Package faults provides deterministic fault injection for the distributed
// simulation substrates: seeded per-operation error and latency injection
// wrapped around the message queue, object store, and subtask database. The
// chaos tests drive the full route+traffic pipeline through these wrappers
// and assert the results stay byte-identical to a clean run — the property
// the paper's master/worker protocol (resend failed subtasks, idempotent
// result files) is supposed to guarantee.
//
// Injection points are split into "before" (the wrapped operation never runs
// — a request lost on the way in) and "after" (the operation ran but the
// reply is lost — the nastier case, since a popped message or an acknowledged
// write silently disappears from the caller's view). Both fire with the same
// configured rate.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"hoyan/internal/mq"
	"hoyan/internal/objstore"
	"hoyan/internal/taskdb"
)

// ErrInjected marks every injected error; retry policies classify it as
// transient like any other unknown error.
var ErrInjected = errors.New("faults: injected error")

// Injector decides, per operation, whether to inject an error or latency.
// One Injector may back several wrappers; it is safe for concurrent use and
// its decisions are a deterministic function of the seed and call order
// (concurrent callers interleave nondeterministically, but the overall
// error rate and reproducibility-per-sequence are preserved).
type Injector struct {
	// ErrorRate is the per-injection-point probability of failing an
	// operation (each op has up to two points: before and after).
	ErrorRate float64
	// MaxLatency, when > 0, sleeps a uniform [0, MaxLatency) before each
	// operation.
	MaxLatency time.Duration

	mu       sync.Mutex
	rng      *rand.Rand
	ops      int64
	injected int64
}

// NewInjector creates an injector with the given deterministic seed.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// point is one injection point; op names the operation for the error text.
func (in *Injector) point(op string) error {
	in.mu.Lock()
	fail := in.rng.Float64() < in.ErrorRate
	var delay time.Duration
	if in.MaxLatency > 0 {
		delay = time.Duration(in.rng.Int63n(int64(in.MaxLatency)))
	}
	in.ops++
	if fail {
		in.injected++
	}
	in.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return fmt.Errorf("%w: %s", ErrInjected, op)
	}
	return nil
}

// Stats reports how many injection points fired and how many injected an
// error.
func (in *Injector) Stats() (points, injected int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops, in.injected
}

// FlakyStore wraps a Store with fault injection.
type FlakyStore struct {
	S  objstore.Store
	In *Injector
}

// Put implements objstore.Store. An "after" failure means the object was
// stored but the caller sees an error — retried Puts must be idempotent.
func (f FlakyStore) Put(key string, data []byte) error {
	if err := f.In.point("store.Put"); err != nil {
		return err
	}
	if err := f.S.Put(key, data); err != nil {
		return err
	}
	return f.In.point("store.Put(ack)")
}

// Get implements objstore.Store.
func (f FlakyStore) Get(key string) ([]byte, error) {
	if err := f.In.point("store.Get"); err != nil {
		return nil, err
	}
	return f.S.Get(key)
}

// List implements objstore.Store.
func (f FlakyStore) List(prefix string) ([]string, error) {
	if err := f.In.point("store.List"); err != nil {
		return nil, err
	}
	return f.S.List(prefix)
}

// Delete implements objstore.Store.
func (f FlakyStore) Delete(key string) error {
	if err := f.In.point("store.Delete"); err != nil {
		return err
	}
	return f.S.Delete(key)
}

// FlakyQueue wraps a Queue with fault injection.
type FlakyQueue struct {
	Q  mq.Queue
	In *Injector
}

// Push implements mq.Queue. An "after" failure means the message was enqueued
// but the caller sees an error — a retried Push duplicates the message, which
// the fencing/idempotency layer must tolerate.
func (f FlakyQueue) Push(topic string, m mq.Message) error {
	if err := f.In.point("mq.Push"); err != nil {
		return err
	}
	if err := f.Q.Push(topic, m); err != nil {
		return err
	}
	return f.In.point("mq.Push(ack)")
}

// Pop implements mq.Queue. An "after" failure silently LOSES the popped
// message — exactly the crash window lease reclaim exists for.
func (f FlakyQueue) Pop(topic string, wait time.Duration) (mq.Message, bool, error) {
	if err := f.In.point("mq.Pop"); err != nil {
		return mq.Message{}, false, err
	}
	m, ok, err := f.Q.Pop(topic, wait)
	if err != nil || !ok {
		return m, ok, err
	}
	if err := f.In.point("mq.Pop(ack)"); err != nil {
		return mq.Message{}, false, err
	}
	return m, true, nil
}

// Len implements mq.Queue. Len is never failed: the master's pending-reclaim
// sweep uses it as its loss heuristic, and the Memory queue cannot misreport.
func (f FlakyQueue) Len(topic string) (int, error) { return f.Q.Len(topic) }

// FlakyTasks wraps a task DB with fault injection.
type FlakyTasks struct {
	DB taskdb.DB
	In *Injector
}

// Upsert implements taskdb.DB. An "after" failure means the write landed but
// the caller sees an error.
func (f FlakyTasks) Upsert(rec taskdb.Record) error {
	if err := f.In.point("tasks.Upsert"); err != nil {
		return err
	}
	if err := f.DB.Upsert(rec); err != nil {
		return err
	}
	return f.In.point("tasks.Upsert(ack)")
}

// FencedUpsert implements taskdb.DB.
func (f FlakyTasks) FencedUpsert(rec taskdb.Record) (bool, error) {
	if err := f.In.point("tasks.FencedUpsert"); err != nil {
		return false, err
	}
	applied, err := f.DB.FencedUpsert(rec)
	if err != nil {
		return applied, err
	}
	if err := f.In.point("tasks.FencedUpsert(ack)"); err != nil {
		return false, err
	}
	return applied, nil
}

// Heartbeat implements taskdb.DB.
func (f FlakyTasks) Heartbeat(taskID, kind string, subID, attempt int, at time.Time) (bool, error) {
	if err := f.In.point("tasks.Heartbeat"); err != nil {
		return false, err
	}
	return f.DB.Heartbeat(taskID, kind, subID, attempt, at)
}

// Get implements taskdb.DB.
func (f FlakyTasks) Get(taskID, kind string, subID int) (taskdb.Record, bool, error) {
	if err := f.In.point("tasks.Get"); err != nil {
		return taskdb.Record{}, false, err
	}
	return f.DB.Get(taskID, kind, subID)
}

// List implements taskdb.DB.
func (f FlakyTasks) List(taskID string) ([]taskdb.Record, error) {
	if err := f.In.point("tasks.List"); err != nil {
		return nil, err
	}
	return f.DB.List(taskID)
}
