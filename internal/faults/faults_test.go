package faults

import (
	"errors"
	"testing"
	"time"

	"hoyan/internal/mq"
	"hoyan/internal/objstore"
	"hoyan/internal/taskdb"
)

func TestInjectorDeterministicAndRateBounded(t *testing.T) {
	run := func(seed int64) []bool {
		in := NewInjector(seed)
		in.ErrorRate = 0.3
		var out []bool
		for i := 0; i < 1000; i++ {
			out = append(out, in.point("op") != nil)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	fails := 0
	for _, f := range a {
		if f {
			fails++
		}
	}
	if fails < 200 || fails > 400 {
		t.Fatalf("injected %d/1000 at rate 0.3", fails)
	}
	points, injected := func() (int64, int64) {
		in := NewInjector(42)
		in.ErrorRate = 0.3
		for i := 0; i < 10; i++ {
			in.point("op")
		}
		return in.Stats()
	}()
	if points != 10 || injected < 0 || injected > 10 {
		t.Fatalf("Stats = %d, %d", points, injected)
	}
}

func TestInjectedErrorsAreMarked(t *testing.T) {
	in := NewInjector(1)
	in.ErrorRate = 1
	err := in.point("store.Get")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
}

func TestFlakyStoreDelegatesWhenQuiet(t *testing.T) {
	in := NewInjector(1) // rate 0: never fails
	s := FlakyStore{S: objstore.NewMemory(), In: in}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q %v", got, err)
	}
	if _, err := s.Get("missing"); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	keys, err := s.List("")
	if err != nil || len(keys) != 1 {
		t.Fatalf("List = %v %v", keys, err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
}

// seedPassFail finds a seed whose first injection point passes and whose
// second fails at rate 0.5, so a wrapped op runs for real and then loses its
// acknowledgement.
func seedPassFail(t *testing.T) *Injector {
	t.Helper()
	for seed := int64(1); seed < 1000; seed++ {
		probe := NewInjector(seed)
		probe.ErrorRate = 0.5
		if probe.point("a") == nil && probe.point("b") != nil {
			in := NewInjector(seed)
			in.ErrorRate = 0.5
			return in
		}
	}
	t.Fatal("no suitable seed found")
	return nil
}

func TestFlakyStorePutAfterFailureStillStores(t *testing.T) {
	// An "ack lost" Put failure must leave the object stored: this is the
	// case idempotent retried Puts paper over.
	mem := objstore.NewMemory()
	s := FlakyStore{S: mem, In: seedPassFail(t)}
	if err := s.Put("k", []byte("v")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Put = %v, want injected after-failure", err)
	}
	got, err := mem.Get("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("object missing after ack-lost Put: %q %v", got, err)
	}
}

func TestFlakyQueueAfterFailureLosesMessage(t *testing.T) {
	q := FlakyQueue{Q: mq.NewMemory(), In: seedPassFail(t)}
	if err := q.Q.Push("t", mq.Message{ID: "m1"}); err != nil {
		t.Fatal(err)
	}
	_, ok, err := q.Pop("t", 10*time.Millisecond)
	if err == nil || ok {
		t.Fatalf("Pop = ok=%v err=%v, want injected after-failure", ok, err)
	}
	// The message is gone: lost in flight, exactly what lease reclaim covers.
	if n, _ := q.Q.Len("t"); n != 0 {
		t.Fatalf("queue len = %d, want 0 (message lost)", n)
	}
}

func TestFlakyTasksDelegatesWhenQuiet(t *testing.T) {
	in := NewInjector(1)
	db := FlakyTasks{DB: taskdb.NewMemory(), In: in}
	rec := taskdb.Record{TaskID: "t", Kind: "route", SubID: 0, Status: taskdb.StatusRunning, Attempts: 1}
	if ok, err := db.FencedUpsert(rec); err != nil || !ok {
		t.Fatalf("FencedUpsert = %v %v", ok, err)
	}
	if ok, err := db.Heartbeat("t", "route", 0, 1, time.Now()); err != nil || !ok {
		t.Fatalf("Heartbeat = %v %v", ok, err)
	}
	rec.Attempts = 0
	if ok, err := db.FencedUpsert(rec); err != nil || ok {
		t.Fatalf("stale FencedUpsert applied through wrapper: %v %v", ok, err)
	}
	recs, err := db.List("t")
	if err != nil || len(recs) != 1 {
		t.Fatalf("List = %v %v", recs, err)
	}
	if _, ok, err := db.Get("t", "route", 0); err != nil || !ok {
		t.Fatalf("Get = %v %v", ok, err)
	}
	if err := db.Upsert(rec); err != nil {
		t.Fatal(err)
	}
}

func TestFlakyQueueLenNeverInjected(t *testing.T) {
	in := NewInjector(3)
	in.ErrorRate = 1
	q := FlakyQueue{Q: mq.NewMemory(), In: in}
	if _, err := q.Len("t"); err != nil {
		t.Fatalf("Len injected an error: %v", err)
	}
}
