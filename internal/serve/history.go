package serve

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"hoyan/internal/durable"
	"hoyan/internal/objstore"
	"hoyan/internal/telemetry"
)

// HistoryEntry is one finished query's durable record. The entry itself is
// WAL-logged; the (potentially large) result body lives in the object store
// under ResultKey.
type HistoryEntry struct {
	ID          string    `json:"id"`
	Tenant      string    `json:"tenant"`
	Kind        string    `json:"kind"`
	NetworkID   string    `json:"network_id"`
	State       string    `json:"state"`
	Error       string    `json:"error,omitempty"`
	EnqueuedAt  time.Time `json:"enqueued_at"`
	FinishedAt  time.Time `json:"finished_at"`
	QueueWaitMS float64   `json:"queue_wait_ms"`
	RunMS       float64   `json:"run_ms"`
	ResultKey   string    `json:"result_key,omitempty"`
}

// history is a bounded, WAL-backed ring of finished queries. Restarting the
// daemon replays the WAL, so GET /v1/history survives crashes; entries past
// the bound are compacted away together with their result blobs.
type history struct {
	mu      sync.Mutex
	wal     *durable.WAL
	store   *objstore.Disk
	entries []HistoryEntry
	limit   int
}

// openHistory opens (or replays) the run-history store under dir.
func openHistory(dir string, limit int, opts durable.Options, reg *telemetry.Registry) (*history, error) {
	if limit <= 0 {
		limit = 1024
	}
	h := &history{limit: limit}
	store, err := objstore.OpenDisk(filepath.Join(dir, "results"), opts)
	if err != nil {
		return nil, fmt.Errorf("serve: history objstore: %w", err)
	}
	h.store = store
	wal, _, err := durable.Open(filepath.Join(dir, "history.wal"), opts, func(rec []byte) error {
		var e HistoryEntry
		if err := json.Unmarshal(rec, &e); err != nil {
			return err
		}
		h.entries = append(h.entries, e)
		return nil
	})
	if err != nil {
		store.Close()
		return nil, fmt.Errorf("serve: history wal: %w", err)
	}
	h.wal = wal
	if len(h.entries) > limit {
		h.entries = h.entries[len(h.entries)-limit:]
	}
	if reg != nil {
		wal.Instrument(reg, "serve_history")
		store.Instrument(reg)
	}
	return h, nil
}

// Record appends one finished query, storing its result body (if any) in the
// object store, and compacts past the bound.
func (h *history) Record(e HistoryEntry, result *QueryResult) error {
	if result != nil {
		body, err := json.Marshal(result)
		if err != nil {
			return err
		}
		e.ResultKey = "result/" + e.ID
		if err := h.store.Put(e.ResultKey, body); err != nil {
			return err
		}
	}
	rec, err := json.Marshal(e)
	if err != nil {
		return err
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	h.entries = append(h.entries, e)
	if err := h.wal.Append(rec); err != nil {
		return err
	}
	if len(h.entries) > h.limit {
		evicted := h.entries[:len(h.entries)-h.limit]
		h.entries = append([]HistoryEntry(nil), h.entries[len(h.entries)-h.limit:]...)
		records := make([][]byte, 0, len(h.entries))
		for _, keep := range h.entries {
			r, err := json.Marshal(keep)
			if err != nil {
				return err
			}
			records = append(records, r)
		}
		if err := h.wal.Compact(records); err != nil {
			return err
		}
		for _, old := range evicted {
			if old.ResultKey != "" {
				h.store.Delete(old.ResultKey)
			}
		}
	}
	return nil
}

// List returns the newest-first entries, optionally filtered by tenant,
// capped at limit (0 = 100).
func (h *history) List(tenant string, limit int) []HistoryEntry {
	if limit <= 0 {
		limit = 100
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []HistoryEntry
	for i := len(h.entries) - 1; i >= 0 && len(out) < limit; i-- {
		if tenant != "" && h.entries[i].Tenant != tenant {
			continue
		}
		out = append(out, h.entries[i])
	}
	return out
}

// Result fetches a stored result body by entry ID.
func (h *history) Result(id string) (*QueryResult, error) {
	body, err := h.store.Get("result/" + id)
	if err != nil {
		return nil, err
	}
	var res QueryResult
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Entry finds one entry by ID.
func (h *history) Entry(id string) (HistoryEntry, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := len(h.entries) - 1; i >= 0; i-- {
		if h.entries[i].ID == id {
			return h.entries[i], true
		}
	}
	return HistoryEntry{}, false
}

// Close flushes and closes the WAL and object store.
func (h *history) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	err := h.wal.Close()
	if cerr := h.store.Close(); err == nil {
		err = cerr
	}
	return err
}
