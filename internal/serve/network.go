package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"sync"
	"time"

	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/netmodel"
)

// Network is one loaded snapshot: the parsed model, a warm engine with a
// completed BaseRun, the base state's digest, and a pool of scratch network
// clones so concurrent what-if queries never pay the full clone cost twice.
type Network struct {
	ID       string
	net      *config.Network
	inputs   []netmodel.Route
	flows    []netmodel.Flow
	eng      *core.Engine
	base     *core.Result
	baseDig  string
	bw       map[netmodel.LinkID]float64
	loadedAt time.Time

	clones sync.Pool
}

// loadNetwork builds the engine and runs the base simulation once — the
// expensive cold start every subsequent query amortizes.
func loadNetwork(id string, net *config.Network, inputs []netmodel.Route, flows []netmodel.Flow, opts core.Options) (*Network, error) {
	eng := core.NewEngine(net, opts)
	base, err := eng.BaseRunCtx(nil, inputs, flows)
	if err != nil {
		return nil, fmt.Errorf("serve: base run: %w", err)
	}
	n := &Network{
		ID:       id,
		net:      net,
		inputs:   inputs,
		flows:    flows,
		eng:      eng,
		base:     base,
		baseDig:  ribDigest(base.Routes.GlobalRIB()),
		bw:       make(map[netmodel.LinkID]float64),
		loadedAt: time.Now(),
	}
	for _, l := range net.Topo.Links() {
		if l.Bandwidth > 0 {
			n.bw[l.ID()] = l.Bandwidth
		}
	}
	n.clones.New = func() any { return n.net.Clone() }
	return n, nil
}

// scratch hands out a private clone of the network model; putScratch returns
// it. Callers must revert every topology toggle before returning the clone.
func (n *Network) scratch() *config.Network {
	return n.clones.Get().(*config.Network)
}

func (n *Network) putScratch(c *config.Network) {
	n.clones.Put(c)
}

// resolveLinks maps LinkRefs to link IDs on this network's topology.
func (n *Network) resolveLinks(refs []LinkRef) ([]netmodel.LinkID, error) {
	ids := make([]netmodel.LinkID, 0, len(refs))
	for _, ref := range refs {
		l := n.net.Topo.FindLink(ref.A, ref.B)
		if l == nil {
			return nil, fmt.Errorf("serve: no link between %q and %q", ref.A, ref.B)
		}
		ids = append(ids, l.ID())
	}
	return ids, nil
}

// ribDigest reduces a global RIB to an order-independent digest: each row's
// signature is sha256-hashed and the per-row hashes are summed lane-wise
// (sums, unlike XOR, don't cancel duplicate rows). Two states with equal
// digests carry byte-identical RIB row sets regardless of row order — this
// is the equivalence the e2e test checks against the batch CLI path. The
// digest runs on every query response, so it avoids the sort and the
// per-row allocations a canonical-order hash would need.
func ribDigest(g *netmodel.GlobalRIB) string {
	rows := g.Rows()
	var acc [4]uint64
	buf := netmodel.GetSigBuf()
	defer netmodel.PutSigBuf(buf)
	for i := range rows {
		*buf = rows[i].AppendSignature((*buf)[:0])
		sum := sha256.Sum256(*buf)
		for lane := 0; lane < 4; lane++ {
			acc[lane] += binary.BigEndian.Uint64(sum[lane*8:])
		}
	}
	var out [32]byte
	for lane := 0; lane < 4; lane++ {
		binary.BigEndian.PutUint64(out[lane*8:], acc[lane])
	}
	return hex.EncodeToString(out[:])
}

// RIBRow is one route row of GET /v1/networks/{id}/rib.
type RIBRow struct {
	Device   string `json:"device"`
	VRF      string `json:"vrf,omitempty"`
	Prefix   string `json:"prefix"`
	Protocol string `json:"protocol"`
	NextHop  string `json:"next_hop"`
	Peer     string `json:"peer,omitempty"`
}

// ribQuery filters the base global RIB by device and/or prefix, capped at
// limit rows (0 = 1000).
func (n *Network) ribQuery(device, prefix string, limit int) []RIBRow {
	if limit <= 0 {
		limit = 1000
	}
	var out []RIBRow
	for _, r := range n.base.Routes.GlobalRIB().Rows() {
		if device != "" && r.Device != device {
			continue
		}
		if prefix != "" && r.Prefix.String() != prefix {
			continue
		}
		out = append(out, RIBRow{
			Device:   r.Device,
			VRF:      r.VRF,
			Prefix:   r.Prefix.String(),
			Protocol: r.Protocol.String(),
			NextHop:  r.NextHop.String(),
			Peer:     r.Peer,
		})
		if len(out) >= limit {
			break
		}
	}
	return out
}

// ---- wire-format upload bundle ----
//
// The wire package's frames are decoded through a bufio reader, so decoding
// several frames sequentially off one stream is unsafe (the reader buffers
// past the frame end). The upload bundle therefore length-prefixes each
// section — snapshot, input routes, flows — with an 8-byte big-endian length,
// and each section is decoded from its own in-memory reader.

// EncodeBundle writes a network model, its input routes, and its flows as an
// upload bundle for POST /v1/networks with Content-Type
// application/x-hoyan-wire.
func EncodeBundle(w io.Writer, net *config.Network, inputs []netmodel.Route, flows []netmodel.Flow) error {
	sections := make([][]byte, 3)
	var buf bytes.Buffer
	if err := core.TakeSnapshot(net).Encode(&buf); err != nil {
		return err
	}
	sections[0] = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := core.EncodeRoutes(&buf, inputs); err != nil {
		return err
	}
	sections[1] = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := core.EncodeFlows(&buf, flows); err != nil {
		return err
	}
	sections[2] = buf.Bytes()

	var hdr [8]byte
	for _, sec := range sections {
		binary.BigEndian.PutUint64(hdr[:], uint64(len(sec)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(sec); err != nil {
			return err
		}
	}
	return nil
}

// maxBundleSection bounds one bundle section (1 GiB) so a corrupt length
// prefix cannot drive an allocation of arbitrary size.
const maxBundleSection = 1 << 30

// DecodeBundle reads an upload bundle back into its parts.
func DecodeBundle(r io.Reader) (*config.Network, []netmodel.Route, []netmodel.Flow, error) {
	readSection := func() ([]byte, error) {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, err
		}
		n := binary.BigEndian.Uint64(hdr[:])
		if n > maxBundleSection {
			return nil, fmt.Errorf("serve: bundle section of %d bytes exceeds limit", n)
		}
		sec := make([]byte, n)
		if _, err := io.ReadFull(r, sec); err != nil {
			return nil, err
		}
		return sec, nil
	}

	snapBytes, err := readSection()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("serve: bundle snapshot section: %w", err)
	}
	routeBytes, err := readSection()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("serve: bundle routes section: %w", err)
	}
	flowBytes, err := readSection()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("serve: bundle flows section: %w", err)
	}

	snap, err := core.DecodeSnapshot(bytes.NewReader(snapBytes))
	if err != nil {
		return nil, nil, nil, err
	}
	net, err := snap.RestoreParallel(0)
	if err != nil {
		return nil, nil, nil, err
	}
	inputs, err := core.DecodeRoutes(bytes.NewReader(routeBytes))
	if err != nil {
		return nil, nil, nil, err
	}
	flows, err := core.DecodeFlows(bytes.NewReader(flowBytes))
	if err != nil {
		return nil, nil, nil, err
	}
	return net, inputs, flows, nil
}
