package serve

import (
	"net/http"
	"strings"
	"sync"
	"time"
)

// TenantConfig declares one tenant of the query service: its API key, its
// token-bucket rate limit, its in-flight quota, and its scheduling weight.
type TenantConfig struct {
	// Name identifies the tenant in metrics, history, and query listings.
	Name string `json:"name"`
	// APIKey authenticates the tenant (Authorization: Bearer <key> or
	// X-API-Key: <key>).
	APIKey string `json:"api_key"`
	// RatePerSec refills the admission token bucket (queries per second).
	// 0 disables rate limiting for the tenant.
	RatePerSec float64 `json:"rate_per_sec"`
	// Burst is the bucket capacity (max queries admitted back-to-back).
	// Defaults to max(1, RatePerSec).
	Burst float64 `json:"burst"`
	// MaxInFlight bounds the tenant's queries that are queued or running at
	// once; 0 means unlimited.
	MaxInFlight int `json:"max_in_flight"`
	// Weight is the tenant's share of worker time in the weighted queue
	// (stride scheduling); 0 means 1.
	Weight int `json:"weight"`
}

// tenant is the runtime admission state behind one TenantConfig.
type tenant struct {
	cfg TenantConfig

	mu       sync.Mutex
	tokens   float64
	last     time.Time
	inFlight int

	// pass is the tenant's stride-scheduling virtual time; owned by the
	// queue's lock, not the tenant's.
	pass uint64
}

func (t *tenant) weight() uint64 {
	if t.cfg.Weight <= 0 {
		return 1
	}
	return uint64(t.cfg.Weight)
}

// admit takes one token from the bucket. When the bucket is dry it returns
// false and how long until a token is available (the Retry-After hint).
func (t *tenant) admit(now time.Time) (bool, time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cfg.RatePerSec <= 0 {
		return true, 0
	}
	burst := t.cfg.Burst
	if burst <= 0 {
		burst = max(1, t.cfg.RatePerSec)
	}
	if t.last.IsZero() {
		t.tokens = burst
	} else {
		t.tokens = min(burst, t.tokens+now.Sub(t.last).Seconds()*t.cfg.RatePerSec)
	}
	t.last = now
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	wait := time.Duration((1 - t.tokens) / t.cfg.RatePerSec * float64(time.Second))
	return false, wait
}

// acquire reserves one in-flight slot; release returns it.
func (t *tenant) acquire() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cfg.MaxInFlight > 0 && t.inFlight >= t.cfg.MaxInFlight {
		return false
	}
	t.inFlight++
	return true
}

func (t *tenant) release() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.inFlight > 0 {
		t.inFlight--
	}
}

// admission maps API keys to tenants.
type admission struct {
	byKey  map[string]*tenant
	byName map[string]*tenant
}

func newAdmission(cfgs []TenantConfig) *admission {
	a := &admission{byKey: make(map[string]*tenant), byName: make(map[string]*tenant)}
	for _, cfg := range cfgs {
		t := &tenant{cfg: cfg}
		a.byKey[cfg.APIKey] = t
		a.byName[cfg.Name] = t
	}
	return a
}

// authenticate resolves the request's API key (Authorization: Bearer or
// X-API-Key) to a tenant, or nil.
func (a *admission) authenticate(r *http.Request) *tenant {
	key := r.Header.Get("X-API-Key")
	if key == "" {
		if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
			key = strings.TrimPrefix(auth, "Bearer ")
		}
	}
	if key == "" {
		return nil
	}
	return a.byKey[key]
}
