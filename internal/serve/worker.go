package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hoyan/internal/change"
	"hoyan/internal/core"
	"hoyan/internal/intent"
	"hoyan/internal/kfail"
	"hoyan/internal/netmodel"
	"hoyan/internal/telemetry"
)

// workerLoop is one worker goroutine: pop, execute, record, repeat until the
// queue closes.
func (s *Server) workerLoop() {
	defer s.wg.Done()
	for {
		qu, err := s.queue.Pop()
		if err != nil {
			return
		}
		s.execute(qu)
	}
}

// execute runs one query to a terminal state and records it in history.
func (s *Server) execute(qu *Query) {
	defer s.queriesWG.Done()
	defer qu.Tenant.release()
	s.mQueueDepth.Set(float64(s.queue.Depth()))

	if qu.State() == StateCanceled {
		s.record(qu)
		return
	}

	qu.setRunning()
	s.mInflight.Add(1)
	defer s.mInflight.Add(-1)
	wait := time.Since(qu.enqueuedAt)
	s.mQueueWait.Observe(wait.Seconds())

	deadline := s.cfg.DefaultDeadline
	if qu.Req.DeadlineMS > 0 {
		deadline = time.Duration(qu.Req.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, deadline)
	qu.setCancel(cancel)
	defer cancel()

	start := time.Now()
	res, err := s.run(ctx, qu)
	kind := kindOf(qu.Req)
	s.reg.Histogram("serve_query_latency_seconds",
		"what-if query execution latency by kind",
		telemetry.DurationBuckets, telemetry.L("kind", kind)).Observe(time.Since(start).Seconds())

	switch {
	case err == nil:
		qu.finish(StateDone, res, "")
	case errors.Is(err, context.Canceled):
		qu.finish(StateCanceled, nil, "canceled")
	case errors.Is(err, context.DeadlineExceeded):
		qu.finish(StateFailed, nil, "deadline exceeded")
	default:
		qu.finish(StateFailed, nil, err.Error())
	}
	s.record(qu)
}

// record persists the finished query to the run-history store.
func (s *Server) record(qu *Query) {
	if s.hist == nil {
		return
	}
	st := qu.Snapshot()
	e := HistoryEntry{
		ID:          st.ID,
		Tenant:      st.Tenant,
		Kind:        kindOf(qu.Req),
		NetworkID:   qu.Req.NetworkID,
		State:       st.State,
		Error:       st.Error,
		EnqueuedAt:  st.EnqueuedAt,
		QueueWaitMS: st.QueueWaitMS,
		RunMS:       st.RunMS,
	}
	if st.FinishedAt != nil {
		e.FinishedAt = *st.FinishedAt
	}
	if err := s.hist.Record(e, st.Result); err != nil {
		s.reg.Counter("serve_history_errors_total", "run-history writes that failed").Inc()
	}
}

func kindOf(req QueryRequest) string {
	if req.Kind == "" {
		return "whatif"
	}
	return req.Kind
}

// run dispatches to the per-kind executor.
func (s *Server) run(ctx context.Context, qu *Query) (*QueryResult, error) {
	n, err := s.network(qu.Req.NetworkID)
	if err != nil {
		return nil, err
	}
	switch kindOf(qu.Req) {
	case "whatif":
		return s.runWhatIf(ctx, n, qu)
	case "verify":
		return s.runVerify(n, qu)
	case "kfail":
		return s.runKfail(ctx, n, qu)
	case "plan":
		return s.runPlan(ctx, n, qu)
	default:
		return nil, fmt.Errorf("serve: unknown query kind %q", qu.Req.Kind)
	}
}

// buildDelta resolves a what-if request's failures into an engine delta.
func buildDelta(n *Network, req QueryRequest) (core.Delta, error) {
	var d core.Delta
	ids, err := n.resolveLinks(req.FailLinks)
	if err != nil {
		return d, err
	}
	d.LinksDown = ids
	for _, dev := range req.FailDevices {
		if n.net.Topo.Node(dev) == nil {
			return d, fmt.Errorf("serve: unknown device %q", dev)
		}
		d.NodesDown = append(d.NodesDown, dev)
	}
	if len(d.LinksDown) == 0 && len(d.NodesDown) == 0 {
		return d, fmt.Errorf("serve: what-if query fails nothing (set fail_links or fail_devices)")
	}
	return d, nil
}

// runWhatIf forks the warm engine under the requested failures and verifies
// any attached specs against (base, updated).
func (s *Server) runWhatIf(ctx context.Context, n *Network, qu *Query) (*QueryResult, error) {
	d, err := buildDelta(n, qu.Req)
	if err != nil {
		return nil, err
	}

	scratch := n.scratch()
	defer n.putScratch(scratch)
	var revertLinks []netmodel.LinkID
	var revertNodes []string
	for _, id := range d.LinksDown {
		if l := scratch.Topo.Link(id); l != nil && l.Up {
			scratch.Topo.SetLinkUp(id, false)
			revertLinks = append(revertLinks, id)
		}
	}
	for _, name := range d.NodesDown {
		if node := scratch.Topo.Node(name); node != nil && node.Up {
			scratch.Topo.SetNodeUp(name, false)
			revertNodes = append(revertNodes, name)
		}
	}
	defer func() {
		for _, id := range revertLinks {
			scratch.Topo.SetLinkUp(id, true)
		}
		for _, name := range revertNodes {
			scratch.Topo.SetNodeUp(name, true)
		}
	}()

	res, _, err := n.eng.ForkCtxN(ctx, scratch, d, s.cfg.QueryParallelism)
	if err != nil {
		return nil, err
	}
	return s.assemble(n, res, qu.Req.Specs)
}

// runVerify checks specs against the unchanged base state (updated == base).
func (s *Server) runVerify(n *Network, qu *Query) (*QueryResult, error) {
	if len(qu.Req.Specs) == 0 {
		return nil, fmt.Errorf("serve: verify query carries no specs")
	}
	return s.assemble(n, n.base, qu.Req.Specs)
}

// runKfail sweeps failure combinations off the warm engine, streaming
// progress events. The sequential kfail path toggles the passed network in
// place, so it gets a private clone, never the shared base model.
func (s *Server) runKfail(ctx context.Context, n *Network, qu *Query) (*QueryResult, error) {
	k := qu.Req.K
	if k < 1 {
		k = 1
	}
	maxScen := qu.Req.MaxScenarios
	if maxScen <= 0 {
		maxScen = 512
	}
	intents := make([]intent.Intent, 0, len(qu.Req.Specs))
	for _, spec := range qu.Req.Specs {
		intents = append(intents, intent.RouteIntent{Spec: spec})
	}

	scratch := n.scratch()
	defer n.putScratch(scratch)
	res, err := kfail.Check(scratch, n.inputs, n.flows, intents, kfail.Options{
		K:            k,
		MaxScenarios: maxScen,
		Sim:          s.cfg.Sim,
		Parallelism:  1, // query-level parallelism owns the worker pool
		// ...but each scenario fork may still use this query's core slice;
		// without the cap, warm forks off n.eng ran at full engine
		// parallelism and one sweep starved every other tenant's queries.
		EngineParallelism: s.cfg.QueryParallelism,
		Engine:            n.eng,
		Ctx:               ctx,
		Progress: func(done, total int) {
			if done%16 == 0 || done == total {
				qu.emit("progress", map[string]int{"done": done, "total": total})
			}
		},
	})
	if err != nil {
		return nil, err
	}
	out := &QueryResult{
		BaseDigest: n.baseDig,
		SpecsOK:    res.OK(),
		Kfail:      &KfailSummary{Scenarios: res.Scenarios, Violations: len(res.Violations)},
	}
	for i, v := range res.Violations {
		if i >= 8 {
			break
		}
		var parts []string
		for _, el := range v.Failed {
			parts = append(parts, el.String())
		}
		line := fmt.Sprintf("failed={%s}", joinComma(parts))
		for _, rep := range v.Reports {
			if !rep.Satisfied {
				line += " intent=" + rep.Intent
			}
		}
		out.Kfail.Worst = append(out.Kfail.Worst, line)
	}
	return out, nil
}

// runPlan applies a configuration-change plan and simulates the updated
// model. Pure topology-toggle plans ride the warm fork; config changes
// rebuild and run cold.
func (s *Server) runPlan(ctx context.Context, n *Network, qu *Query) (*QueryResult, error) {
	if len(qu.Req.Commands) == 0 {
		return nil, fmt.Errorf("serve: plan query carries no commands")
	}
	plan := &change.Plan{
		ID:       qu.ID,
		Type:     change.RouteAttrModify,
		Commands: qu.Req.Commands,
	}
	updated, err := plan.Apply(n.net)
	if err != nil {
		return nil, err
	}
	simOpts := s.cfg.Sim
	simOpts.Parallelism = s.cfg.QueryParallelism
	eng := core.NewEngine(updated, simOpts)
	res, err := eng.RunCtx(ctx, plan.ApplyInputs(n.inputs), n.flows)
	if err != nil {
		return nil, err
	}
	return s.assemble(n, res, qu.Req.Specs)
}

// assemble digests the updated state, diffs it against base, and checks the
// attached specs.
func (s *Server) assemble(n *Network, res *core.Result, specs []string) (*QueryResult, error) {
	updated := res.Routes.GlobalRIB()
	baseRIB := n.base.Routes.GlobalRIB()
	out := &QueryResult{
		RIBDigest:  ribDigest(updated),
		BaseDigest: n.baseDig,
		SpecsOK:    true,
	}
	// Equal digests mean identical row sets — skip the Diff. Failures that
	// leave routing untouched are common enough to fast-path.
	if out.RIBDigest != out.BaseDigest {
		onlyBase, onlyUpdated := baseRIB.Diff(updated)
		out.RouteDelta = len(onlyBase) + len(onlyUpdated)
	}
	if len(specs) > 0 {
		intents := make([]intent.Intent, 0, len(specs))
		for _, spec := range specs {
			intents = append(intents, intent.RouteIntent{Spec: spec})
		}
		ictx := &intent.Context{
			Base:    intent.Snapshot{RIB: baseRIB, Bandwidth: n.bw},
			Updated: intent.Snapshot{RIB: updated, Bandwidth: n.bw},
		}
		if res.Traffic != nil {
			ictx.Updated.Paths = res.Traffic.Traffic.Paths
			ictx.Updated.Load = res.Traffic.Traffic.Load
		}
		if n.base.Traffic != nil {
			ictx.Base.Paths = n.base.Traffic.Traffic.Paths
			ictx.Base.Load = n.base.Traffic.Traffic.Load
		}
		reports, ok := intent.Verify(ictx, intents)
		out.SpecsOK = ok
		for _, rep := range reports {
			out.Specs = append(out.Specs, SpecReport{
				Spec:       rep.Intent,
				Satisfied:  rep.Satisfied,
				Violations: rep.Violations,
			})
		}
	}
	return out, nil
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}
