package serve

import (
	"fmt"
	"net/http"
)

// sseWriter streams query events as text/event-stream frames:
//
//	event: <type>
//	data: <json>
//
// Each frame flushes immediately so clients see progress in real time.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

// newSSEWriter prepares the response for streaming; returns nil when the
// underlying writer cannot flush (the handler then falls back to JSON).
func newSSEWriter(w http.ResponseWriter) *sseWriter {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	f.Flush()
	return &sseWriter{w: w, f: f}
}

// Send writes one event frame. Data must be a single-line JSON payload
// (Event.Data always is: json.Marshal never emits raw newlines).
func (s *sseWriter) Send(ev Event) error {
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", ev.Type, ev.Data); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}
