// Package serve implements hoyand: verification-as-a-service. A long-running
// daemon loads a network snapshot once, converges the base simulation, and
// then answers what-if queries over REST/JSON — each query an incremental
// fork of the warm base state rather than a cold CLI run. Multi-tenant
// admission (API keys, token buckets, in-flight quotas), a weighted fair
// queue with bounded depth and 429 backpressure, a worker pool with
// per-query deadlines and cancellation, SSE progress streaming, and a
// WAL-backed run history ride under the API.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/durable"
	"hoyan/internal/netmodel"
	"hoyan/internal/telemetry"
)

// Config parameterizes the server.
type Config struct {
	// Tenants are the authorized API clients. At least one is required.
	Tenants []TenantConfig
	// QueueDepth bounds the total pending queries (default 256); beyond it
	// POST /v1/queries returns 429.
	QueueDepth int
	// Workers sizes the execution pool (default 4).
	Workers int
	// QueryParallelism caps the simulation cores any single query may use.
	// Without a cap, every query forks with the engine's full parallelism,
	// so one tenant's kfail sweep can occupy the whole machine while other
	// tenants' queries — admitted and nominally running — crawl. Default
	// NumCPU/Workers (min 1): the pool saturates the machine, each query
	// gets its fair slice. Results are byte-identical at every setting.
	QueryParallelism int
	// DefaultDeadline caps a query's run time unless it sets deadline_ms
	// (default 60s).
	DefaultDeadline time.Duration
	// HistoryDir, when set, enables the WAL-backed run history under this
	// directory.
	HistoryDir string
	// HistorySize bounds retained history entries (default 1024).
	HistorySize int
	// Durable sets the history store's fsync policy.
	Durable durable.Options
	// Registry receives the serve metrics; nil runs unmetered.
	Registry *telemetry.Registry
	// Sim holds the engine options used for loaded snapshots.
	Sim core.Options
}

// Server is the hoyand query service.
type Server struct {
	cfg   Config
	adm   *admission
	queue *queue
	hist  *history
	reg   *telemetry.Registry

	mu       sync.Mutex
	networks map[string]*Network
	active   string
	queries  map[string]*Query

	nextID    atomic.Int64
	draining  atomic.Bool
	queriesWG sync.WaitGroup
	wg        sync.WaitGroup

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mQueueDepth *telemetry.Gauge
	mInflight   *telemetry.Gauge
	mQueueWait  *telemetry.Histogram
}

// NewServer builds the service and starts its worker pool.
func NewServer(cfg Config) (*Server, error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("serve: at least one tenant is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = 60 * time.Second
	}
	if cfg.QueryParallelism <= 0 {
		cfg.QueryParallelism = runtime.NumCPU() / cfg.Workers
		if cfg.QueryParallelism < 1 {
			cfg.QueryParallelism = 1
		}
	}
	s := &Server{
		cfg:      cfg,
		adm:      newAdmission(cfg.Tenants),
		queue:    newQueue(cfg.QueueDepth),
		reg:      cfg.Registry,
		networks: make(map[string]*Network),
		queries:  make(map[string]*Query),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if cfg.HistoryDir != "" {
		h, err := openHistory(cfg.HistoryDir, cfg.HistorySize, cfg.Durable, cfg.Registry)
		if err != nil {
			return nil, err
		}
		s.hist = h
	}
	s.mQueueDepth = s.reg.Gauge("serve_queue_depth", "queries waiting in the admission queue")
	s.mInflight = s.reg.Gauge("serve_inflight_queries", "queries currently executing")
	s.mQueueWait = s.reg.Histogram("serve_queue_wait_seconds",
		"time from admission to execution start", telemetry.DurationBuckets)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.workerLoop()
	}
	return s, nil
}

// LoadNetwork parses nothing — the model is already built — but runs the
// expensive base simulation once and registers the snapshot under id. When
// activate is true (or it is the first network), it becomes the default
// target for queries without a network_id.
func (s *Server) LoadNetwork(id string, net *config.Network, inputs []netmodel.Route, flows []netmodel.Flow, activate bool) (*Network, error) {
	n, err := loadNetwork(id, net, inputs, flows, s.cfg.Sim)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.networks[id] = n
	if activate || s.active == "" {
		// Snapshot swap: in-flight queries against the old network hold their
		// own *Network and finish undisturbed; only new queries see the swap.
		s.active = id
	}
	return n, nil
}

// network resolves a query's target network (empty id = active).
func (s *Server) network(id string) (*Network, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id == "" {
		id = s.active
	}
	if id == "" {
		return nil, fmt.Errorf("serve: no network loaded")
	}
	n, ok := s.networks[id]
	if !ok {
		return nil, fmt.Errorf("serve: unknown network %q", id)
	}
	return n, nil
}

// Active returns the active network's ID ("" when none is loaded).
func (s *Server) Active() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Shutdown drains the service: new queries are rejected with 503, queued and
// running ones finish (cancelled if ctx expires first), then the workers,
// queue, and history store close. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Drain()

	done := make(chan struct{})
	go func() {
		s.queriesWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline hit: cancel everything still running and wait it out.
		s.baseCancel()
		<-done
	}

	for _, orphan := range s.queue.Close() {
		// Defensive: queriesWG.Wait already returned, so the queue should be
		// empty; any straggler is failed cleanly.
		orphan.finish(StateCanceled, nil, "server shutting down")
	}
	s.wg.Wait()
	s.baseCancel()
	if s.hist != nil {
		return s.hist.Close()
	}
	return nil
}

// Handler returns the REST mux, including the standard ops endpoints
// (/metrics, /healthz, /debug/pprof/) merged from internal/telemetry.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/networks", s.handleLoadNetwork)
	mux.HandleFunc("GET /v1/networks", s.handleListNetworks)
	mux.HandleFunc("GET /v1/networks/{id}/rib", s.handleRIB)
	mux.HandleFunc("POST /v1/queries", s.handleSubmit)
	mux.HandleFunc("GET /v1/queries", s.handleListQueries)
	mux.HandleFunc("GET /v1/queries/{id}", s.handleGetQuery)
	mux.HandleFunc("DELETE /v1/queries/{id}", s.handleCancelQuery)
	mux.HandleFunc("GET /v1/history", s.handleHistory)
	mux.HandleFunc("GET /v1/history/{id}/result", s.handleHistoryResult)

	ops := telemetry.NewOpsHandler(s.reg, s.health, nil)
	mux.Handle("/metrics", ops)
	mux.Handle("/healthz", ops)
	mux.Handle("/debug/pprof/", ops)
	return mux
}

// health reports draining as unhealthy so load balancers stop routing here
// during shutdown.
func (s *Server) health() error {
	if s.draining.Load() {
		return fmt.Errorf("draining")
	}
	if s.hist != nil {
		if err := s.hist.wal.Healthy(); err != nil {
			return err
		}
	}
	return nil
}

// ---- HTTP helpers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// authTenant authenticates or writes 401.
func (s *Server) authTenant(w http.ResponseWriter, r *http.Request) *tenant {
	t := s.adm.authenticate(r)
	if t == nil {
		writeError(w, http.StatusUnauthorized, "missing or unknown API key")
		return nil
	}
	return t
}

func (s *Server) reject(t *tenant, reason string) {
	s.reg.Counter("serve_rejected_total", "queries rejected at admission",
		telemetry.L("tenant", t.cfg.Name), telemetry.L("reason", reason)).Inc()
}

// ---- network handlers ----

// loadNetworkRequest is the JSON body of POST /v1/networks.
type loadNetworkRequest struct {
	ID       string            `json:"id"`
	Configs  map[string]string `json:"configs"`
	Activate *bool             `json:"activate,omitempty"`
}

type networkInfo struct {
	ID         string    `json:"id"`
	Active     bool      `json:"active"`
	Devices    int       `json:"devices"`
	Links      int       `json:"links"`
	BaseRoutes int       `json:"base_routes"`
	BaseDigest string    `json:"base_digest"`
	LoadedAt   time.Time `json:"loaded_at"`
	LoadMS     float64   `json:"load_ms,omitempty"`
}

func (s *Server) networkInfo(n *Network) networkInfo {
	return networkInfo{
		ID:         n.ID,
		Active:     s.Active() == n.ID,
		Devices:    len(n.net.Devices),
		Links:      len(n.net.Topo.Links()),
		BaseRoutes: n.base.Routes.GlobalRIB().Len(),
		BaseDigest: n.baseDig,
		LoadedAt:   n.loadedAt,
	}
}

func (s *Server) handleLoadNetwork(w http.ResponseWriter, r *http.Request) {
	if s.authTenant(w, r) == nil {
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	start := time.Now()
	var (
		id       string
		net      *config.Network
		inputs   []netmodel.Route
		flows    []netmodel.Flow
		activate = true
		err      error
	)
	if r.Header.Get("Content-Type") == "application/x-hoyan-wire" {
		id = r.URL.Query().Get("id")
		if id == "" {
			id = fmt.Sprintf("net-%d", time.Now().UnixNano())
		}
		if r.URL.Query().Get("activate") == "false" {
			activate = false
		}
		net, inputs, flows, err = DecodeBundle(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "decoding wire bundle: %v", err)
			return
		}
	} else {
		var req loadNetworkRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
		if len(req.Configs) == 0 {
			writeError(w, http.StatusBadRequest, "configs is required (or upload application/x-hoyan-wire)")
			return
		}
		id = req.ID
		if id == "" {
			id = fmt.Sprintf("net-%d", time.Now().UnixNano())
		}
		if req.Activate != nil {
			activate = *req.Activate
		}
		net, err = config.BuildNetworkOpts(req.Configs, nil, config.BuildOptions{Parallelism: 0})
		if err != nil {
			writeError(w, http.StatusBadRequest, "building network: %v", err)
			return
		}
	}
	n, err := s.LoadNetwork(id, net, inputs, flows, activate)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "loading network: %v", err)
		return
	}
	info := s.networkInfo(n)
	info.LoadMS = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleListNetworks(w http.ResponseWriter, r *http.Request) {
	if s.authTenant(w, r) == nil {
		return
	}
	s.mu.Lock()
	nets := make([]*Network, 0, len(s.networks))
	for _, n := range s.networks {
		nets = append(nets, n)
	}
	s.mu.Unlock()
	out := make([]networkInfo, 0, len(nets))
	for _, n := range nets {
		out = append(out, s.networkInfo(n))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRIB(w http.ResponseWriter, r *http.Request) {
	if s.authTenant(w, r) == nil {
		return
	}
	n, err := s.network(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		limit, _ = strconv.Atoi(v)
	}
	rows := n.ribQuery(r.URL.Query().Get("device"), r.URL.Query().Get("prefix"), limit)
	writeJSON(w, http.StatusOK, map[string]any{
		"network_id": n.ID,
		"rows":       rows,
		"count":      len(rows),
	})
}

// ---- query handlers ----

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	t := s.authTenant(w, r)
	if t == nil {
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if _, err := s.network(req.NetworkID); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}

	if ok, retry := t.admit(time.Now()); !ok {
		s.reject(t, "rate")
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retry.Seconds()))))
		writeError(w, http.StatusTooManyRequests, "tenant %s over rate limit", t.cfg.Name)
		return
	}
	if !t.acquire() {
		s.reject(t, "quota")
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "tenant %s at max in-flight queries", t.cfg.Name)
		return
	}

	id := fmt.Sprintf("q-%06d", s.nextID.Add(1))
	qu := newQuery(id, t, req)
	s.queriesWG.Add(1)
	if err := s.queue.Push(t, qu); err != nil {
		s.queriesWG.Done()
		t.release()
		if err == ErrQueueFull {
			s.reject(t, "queue")
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "query queue full")
		} else {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		}
		return
	}
	s.mu.Lock()
	s.queries[id] = qu
	s.mu.Unlock()
	s.reg.Counter("serve_queries_total", "queries admitted",
		telemetry.L("tenant", t.cfg.Name)).Inc()
	s.mQueueDepth.Set(float64(s.queue.Depth()))

	// ?wait=1 turns the submit synchronous: the response is the terminal
	// status (result included) instead of 202 + a second status round trip.
	// The query keeps running if the client goes away — it was admitted.
	if v := r.URL.Query().Get("wait"); v == "1" || v == "true" {
		select {
		case <-qu.Done():
			writeJSON(w, http.StatusOK, qu.Snapshot())
		case <-r.Context().Done():
		}
		return
	}
	writeJSON(w, http.StatusAccepted, qu.Snapshot())
}

// lookupQuery enforces tenant visibility: another tenant's query is a 404,
// not a 403, so IDs don't leak.
func (s *Server) lookupQuery(w http.ResponseWriter, r *http.Request, t *tenant) *Query {
	s.mu.Lock()
	qu := s.queries[r.PathValue("id")]
	s.mu.Unlock()
	if qu == nil || qu.Tenant != t {
		writeError(w, http.StatusNotFound, "unknown query")
		return nil
	}
	return qu
}

func (s *Server) handleGetQuery(w http.ResponseWriter, r *http.Request) {
	t := s.authTenant(w, r)
	if t == nil {
		return
	}
	qu := s.lookupQuery(w, r, t)
	if qu == nil {
		return
	}
	if r.Header.Get("Accept") == "text/event-stream" {
		s.streamQuery(w, r, qu)
		return
	}
	writeJSON(w, http.StatusOK, qu.Snapshot())
}

// streamQuery replays the query's events and follows live ones until the
// query reaches a terminal state or the client disconnects.
func (s *Server) streamQuery(w http.ResponseWriter, r *http.Request, qu *Query) {
	sse := newSSEWriter(w)
	if sse == nil {
		writeJSON(w, http.StatusOK, qu.Snapshot())
		return
	}
	replay, live, unsub := qu.Subscribe()
	defer unsub()
	for _, ev := range replay {
		if sse.Send(ev) != nil {
			return
		}
	}
	if live == nil {
		return
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return
			}
			if sse.Send(ev) != nil {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancelQuery(w http.ResponseWriter, r *http.Request) {
	t := s.authTenant(w, r)
	if t == nil {
		return
	}
	qu := s.lookupQuery(w, r, t)
	if qu == nil {
		return
	}
	qu.Cancel()
	writeJSON(w, http.StatusOK, qu.Snapshot())
}

func (s *Server) handleListQueries(w http.ResponseWriter, r *http.Request) {
	t := s.authTenant(w, r)
	if t == nil {
		return
	}
	s.mu.Lock()
	var out []Status
	for _, qu := range s.queries {
		if qu.Tenant == t {
			out = append(out, qu.Snapshot())
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// ---- history handlers ----

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	t := s.authTenant(w, r)
	if t == nil {
		return
	}
	if s.hist == nil {
		writeJSON(w, http.StatusOK, []HistoryEntry{})
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		limit, _ = strconv.Atoi(v)
	}
	writeJSON(w, http.StatusOK, s.hist.List(t.cfg.Name, limit))
}

func (s *Server) handleHistoryResult(w http.ResponseWriter, r *http.Request) {
	t := s.authTenant(w, r)
	if t == nil {
		return
	}
	if s.hist == nil {
		writeError(w, http.StatusNotFound, "history disabled")
		return
	}
	id := r.PathValue("id")
	e, ok := s.hist.Entry(id)
	if !ok || e.Tenant != t.cfg.Name {
		writeError(w, http.StatusNotFound, "unknown history entry")
		return
	}
	if e.ResultKey == "" {
		writeError(w, http.StatusNotFound, "entry has no stored result")
		return
	}
	res, err := s.hist.Result(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}
