package serve

import (
	"errors"
	"sync"
)

// ErrQueueFull is returned by Push when the queue's total depth bound is hit;
// the HTTP layer maps it to 429 with a Retry-After hint.
var ErrQueueFull = errors.New("serve: query queue full")

// ErrQueueClosed is returned once the queue has been drained and closed.
var ErrQueueClosed = errors.New("serve: query queue closed")

// queue is a weighted fair queue of pending queries: one FIFO per tenant,
// scheduled by stride scheduling (each pop picks the non-empty tenant with
// the smallest pass value and advances it by strideUnit/weight), so a
// tenant's share of worker time is proportional to its configured weight
// regardless of how fast it submits.
type queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	fifos   map[*tenant][]*Query
	depth   int
	maxSize int
	closed  bool
	drained bool
}

// strideUnit is the stride numerator; large enough that integer division by
// any sane weight keeps precision.
const strideUnit = 1 << 20

func newQueue(maxSize int) *queue {
	q := &queue{fifos: make(map[*tenant][]*Query), maxSize: maxSize}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues a query on its tenant's FIFO.
func (q *queue) Push(t *tenant, qu *Query) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.drained {
		return ErrQueueClosed
	}
	if q.maxSize > 0 && q.depth >= q.maxSize {
		return ErrQueueFull
	}
	q.fifos[t] = append(q.fifos[t], qu)
	q.depth++
	q.cond.Signal()
	return nil
}

// Pop blocks until a query is available (returning the stride-scheduling
// winner) or the queue is closed. Returns nil, ErrQueueClosed when closed
// and empty.
func (q *queue) Pop() (*Query, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.depth > 0 {
			var best *tenant
			for t, fifo := range q.fifos {
				if len(fifo) == 0 {
					continue
				}
				if best == nil || t.pass < best.pass {
					best = t
				}
			}
			fifo := q.fifos[best]
			qu := fifo[0]
			q.fifos[best] = fifo[1:]
			q.depth--
			best.pass += strideUnit / best.weight()
			if q.depth == 0 && q.drained {
				q.cond.Broadcast()
			}
			return qu, nil
		}
		if q.closed {
			return nil, ErrQueueClosed
		}
		q.cond.Wait()
	}
}

// Depth returns the number of queued queries.
func (q *queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}

// Drain stops accepting new queries; already-queued ones still pop.
func (q *queue) Drain() {
	q.mu.Lock()
	q.drained = true
	q.mu.Unlock()
}

// Close stops accepting and wakes every blocked Pop. Queries still queued at
// close time are returned to the caller so they can be failed cleanly.
func (q *queue) Close() []*Query {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	var orphans []*Query
	for t, fifo := range q.fifos {
		orphans = append(orphans, fifo...)
		q.fifos[t] = nil
	}
	q.depth = 0
	q.cond.Broadcast()
	return orphans
}
