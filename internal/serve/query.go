package serve

import (
	"context"
	"encoding/json"
	"sync"
	"time"
)

// Query states: pending (queued) → running → done | failed | canceled.
const (
	StatePending  = "pending"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// LinkRef names a link by its endpoint devices (the order is normalized by
// the topology lookup).
type LinkRef struct {
	A string `json:"a"`
	B string `json:"b"`
}

// QueryRequest is the body of POST /v1/queries.
type QueryRequest struct {
	// Kind selects the executor: "whatif" (fail links/devices and resimulate),
	// "verify" (check specs against the base state), "kfail" (exhaustive
	// failure sweep), "plan" (apply a change plan). Defaults to "whatif".
	Kind string `json:"kind"`
	// NetworkID targets a loaded snapshot; empty means the active one.
	NetworkID string `json:"network_id"`

	// What-if scenario: links and devices to fail.
	FailLinks   []LinkRef `json:"fail_links,omitempty"`
	FailDevices []string  `json:"fail_devices,omitempty"`

	// Specs are RCL intent specifications checked against (base, updated);
	// for "verify" queries updated == base.
	Specs []string `json:"specs,omitempty"`

	// Commands maps device name to a config-command block ("plan" queries).
	Commands map[string]string `json:"commands,omitempty"`

	// K and MaxScenarios parameterize "kfail" sweeps.
	K            int `json:"k,omitempty"`
	MaxScenarios int `json:"max_scenarios,omitempty"`

	// DeadlineMS overrides the server's default per-query deadline.
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// QueryResult is the terminal payload of a finished query.
type QueryResult struct {
	// RIBDigest is the sha256 of the updated state's sorted global RIB rows —
	// byte-identity with the batch CLI path is checked against this.
	RIBDigest string `json:"rib_digest,omitempty"`
	// BaseDigest is the digest of the base state for reference.
	BaseDigest string `json:"base_digest,omitempty"`
	// RouteDelta counts RIB rows that changed versus base.
	RouteDelta int `json:"route_delta"`
	// Specs reports each intent spec's outcome.
	Specs []SpecReport `json:"specs,omitempty"`
	// SpecsOK is true when every spec held.
	SpecsOK bool `json:"specs_ok"`
	// Kfail carries sweep outcomes for kfail queries.
	Kfail *KfailSummary `json:"kfail,omitempty"`
}

// SpecReport is one intent spec's outcome.
type SpecReport struct {
	Spec       string   `json:"spec"`
	Satisfied  bool     `json:"satisfied"`
	Violations []string `json:"violations,omitempty"`
}

// KfailSummary condenses a kfail sweep.
type KfailSummary struct {
	Scenarios  int      `json:"scenarios"`
	Violations int      `json:"violations"`
	Worst      []string `json:"worst,omitempty"`
}

// Event is one SSE frame of a query's lifecycle.
type Event struct {
	Seq  int             `json:"seq"`
	Type string          `json:"type"` // "state" | "progress" | "result"
	Data json.RawMessage `json:"data"`
	Time time.Time       `json:"time"`
}

// Query is one admitted what-if query moving through the queue and worker
// pool. All mutable fields are guarded by mu; Done closes when the query
// reaches a terminal state.
type Query struct {
	ID     string
	Tenant *tenant
	Req    QueryRequest

	mu          sync.Mutex
	state       string
	events      []Event
	subscribers map[chan Event]struct{}
	result      *QueryResult
	err         string

	enqueuedAt time.Time
	startedAt  time.Time
	finishedAt time.Time

	cancel context.CancelFunc
	done   chan struct{}
}

func newQuery(id string, t *tenant, req QueryRequest) *Query {
	q := &Query{
		ID:          id,
		Tenant:      t,
		Req:         req,
		state:       StatePending,
		subscribers: make(map[chan Event]struct{}),
		enqueuedAt:  time.Now(),
		done:        make(chan struct{}),
	}
	q.emitLocked("state", map[string]string{"state": StatePending})
	return q
}

// emitLocked appends an event and fans it out; callers without the lock use
// emit. Serialization errors are impossible for the small payloads used here
// and are swallowed.
func (q *Query) emitLocked(typ string, payload any) {
	data, _ := json.Marshal(payload)
	ev := Event{Seq: len(q.events) + 1, Type: typ, Data: data, Time: time.Now()}
	q.events = append(q.events, ev)
	for ch := range q.subscribers {
		select {
		case ch <- ev:
		default: // slow subscriber: drop; replay on reconnect recovers
		}
	}
}

func (q *Query) emit(typ string, payload any) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.emitLocked(typ, payload)
}

// Subscribe returns a replay of every past event plus a channel of future
// ones; call the returned unsubscribe when done. A terminal query returns a
// nil channel (replay only).
func (q *Query) Subscribe() ([]Event, chan Event, func()) {
	q.mu.Lock()
	defer q.mu.Unlock()
	replay := make([]Event, len(q.events))
	copy(replay, q.events)
	if q.terminalLocked() {
		return replay, nil, func() {}
	}
	ch := make(chan Event, 64)
	q.subscribers[ch] = struct{}{}
	return replay, ch, func() {
		q.mu.Lock()
		defer q.mu.Unlock()
		delete(q.subscribers, ch)
	}
}

func (q *Query) terminalLocked() bool {
	return q.state == StateDone || q.state == StateFailed || q.state == StateCanceled
}

// setRunning marks the query started.
func (q *Query) setRunning() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.state = StateRunning
	q.startedAt = time.Now()
	q.emitLocked("state", map[string]string{"state": StateRunning})
}

// finish moves the query to a terminal state, emits the result event, and
// closes Done. Idempotent: only the first call wins.
func (q *Query) finish(state string, res *QueryResult, errMsg string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.terminalLocked() {
		return
	}
	q.state = state
	q.result = res
	q.err = errMsg
	q.finishedAt = time.Now()
	q.emitLocked("state", map[string]string{"state": state})
	if res != nil {
		q.emitLocked("result", res)
	} else if errMsg != "" {
		q.emitLocked("result", map[string]string{"error": errMsg})
	}
	for ch := range q.subscribers {
		close(ch)
	}
	q.subscribers = make(map[chan Event]struct{})
	close(q.done)
}

// Status is the JSON shape of GET /v1/queries/{id}.
type Status struct {
	ID          string       `json:"id"`
	Tenant      string       `json:"tenant"`
	Kind        string       `json:"kind"`
	State       string       `json:"state"`
	Error       string       `json:"error,omitempty"`
	Result      *QueryResult `json:"result,omitempty"`
	EnqueuedAt  time.Time    `json:"enqueued_at"`
	StartedAt   *time.Time   `json:"started_at,omitempty"`
	FinishedAt  *time.Time   `json:"finished_at,omitempty"`
	QueueWaitMS float64      `json:"queue_wait_ms"`
	RunMS       float64      `json:"run_ms,omitempty"`
}

// Snapshot returns the query's status for the REST layer.
func (q *Query) Snapshot() Status {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := Status{
		ID:         q.ID,
		Tenant:     q.Tenant.cfg.Name,
		Kind:       q.Req.Kind,
		State:      q.state,
		Error:      q.err,
		Result:     q.result,
		EnqueuedAt: q.enqueuedAt,
	}
	if !q.startedAt.IsZero() {
		t := q.startedAt
		st.StartedAt = &t
		st.QueueWaitMS = float64(q.startedAt.Sub(q.enqueuedAt)) / float64(time.Millisecond)
	} else {
		st.QueueWaitMS = float64(time.Since(q.enqueuedAt)) / float64(time.Millisecond)
	}
	if !q.finishedAt.IsZero() {
		t := q.finishedAt
		st.FinishedAt = &t
		if !q.startedAt.IsZero() {
			st.RunMS = float64(q.finishedAt.Sub(q.startedAt)) / float64(time.Millisecond)
		}
	}
	return st
}

// Cancel cancels a pending or running query.
func (q *Query) Cancel() {
	q.mu.Lock()
	cancel := q.cancel
	q.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	q.finish(StateCanceled, nil, "canceled by client")
}

// setCancel installs the run context's cancel func so DELETE can reach it.
func (q *Query) setCancel(c context.CancelFunc) {
	q.mu.Lock()
	q.cancel = c
	q.mu.Unlock()
}

// Done returns a channel closed when the query reaches a terminal state.
func (q *Query) Done() <-chan struct{} { return q.done }

// State returns the current lifecycle state.
func (q *Query) State() string {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.state
}
