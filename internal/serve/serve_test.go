package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hoyan/internal/core"
	"hoyan/internal/gen"
	"hoyan/internal/netmodel"
	"hoyan/internal/telemetry"
)

// testHarness spins up a server over gen.WAN(1) with two tenants: alice is
// unthrottled, bob is tightly rate-limited so backpressure is observable.
type testHarness struct {
	t    *testing.T
	out  *gen.Output
	srv  *Server
	ts   *httptest.Server
	reg  *telemetry.Registry
	keys map[string]string
}

func newHarness(t *testing.T, cfg Config) *testHarness {
	t.Helper()
	out := gen.Generate(gen.WAN(1))
	if cfg.Tenants == nil {
		cfg.Tenants = []TenantConfig{
			{Name: "alice", APIKey: "key-alice", Weight: 2, MaxInFlight: 64},
			{Name: "bob", APIKey: "key-bob", RatePerSec: 25, Burst: 5, MaxInFlight: 64},
		}
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if _, err := srv.LoadNetwork("wan1", out.Net, out.Inputs, out.Flows, true); err != nil {
		t.Fatalf("LoadNetwork: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	h := &testHarness{
		t: t, out: out, srv: srv, ts: ts, reg: cfg.Registry,
		keys: map[string]string{"alice": "key-alice", "bob": "key-bob"},
	}
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return h
}

func (h *testHarness) do(tenant, method, path string, body any) (*http.Response, []byte) {
	h.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			h.t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, h.ts.URL+path, rd)
	if err != nil {
		h.t.Fatalf("request: %v", err)
	}
	req.Header.Set("X-API-Key", h.keys[tenant])
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		h.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// submitRetrying retries 429s until the query is accepted; returns the query
// ID and how many 429s were seen on the way in.
func (h *testHarness) submitRetrying(tenant string, req QueryRequest) (string, int) {
	h.t.Helper()
	rejected := 0
	for {
		resp, body := h.do(tenant, "POST", "/v1/queries", req)
		switch resp.StatusCode {
		case http.StatusAccepted:
			var st Status
			if err := json.Unmarshal(body, &st); err != nil {
				h.t.Fatalf("decode submit response: %v", err)
			}
			return st.ID, rejected
		case http.StatusTooManyRequests:
			rejected++
			if resp.Header.Get("Retry-After") == "" {
				h.t.Fatalf("429 without Retry-After")
			}
			time.Sleep(20 * time.Millisecond)
		default:
			h.t.Fatalf("submit: unexpected status %d: %s", resp.StatusCode, body)
		}
	}
}

// await polls a query until it reaches a terminal state.
func (h *testHarness) await(tenant, id string) Status {
	h.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := h.do(tenant, "GET", "/v1/queries/"+id, nil)
		if resp.StatusCode != http.StatusOK {
			h.t.Fatalf("get query %s: status %d: %s", id, resp.StatusCode, body)
		}
		var st Status
		if err := json.Unmarshal(body, &st); err != nil {
			h.t.Fatalf("decode status: %v", err)
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.t.Fatalf("query %s never finished", id)
	return Status{}
}

// coldDigest runs the scenario the way the batch CLI does: clone, toggle,
// fresh engine, full run — the reference the warm service must match
// byte-for-byte.
func coldDigest(out *gen.Output, fail netmodel.LinkID) string {
	scratch := out.Net.Clone()
	scratch.Topo.SetLinkUp(fail, false)
	eng := core.NewEngine(scratch, core.Options{})
	res := eng.Run(out.Inputs, out.Flows)
	return ribDigest(res.Routes.GlobalRIB())
}

// TestServeE2E is the acceptance test: one snapshot loaded once, >=100
// concurrent what-if queries from two tenants, rate-limit 429s observed,
// every result byte-identical to the batch CLI path, and a clean drain.
func TestServeE2E(t *testing.T) {
	h := newHarness(t, Config{Workers: 4, QueueDepth: 512})

	links := h.out.Net.Topo.Links()
	step := len(links)/10 + 1
	var scenarios []netmodel.LinkID
	for i := 0; i < len(links); i += step {
		scenarios = append(scenarios, links[i].ID())
	}
	want := make(map[netmodel.LinkID]string, len(scenarios))
	for _, id := range scenarios {
		want[id] = coldDigest(h.out, id)
	}

	const total = 120
	type outcome struct {
		link     netmodel.LinkID
		st       Status
		rejected int
	}
	results := make([]outcome, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := "alice"
			if i%2 == 1 {
				tenant = "bob"
			}
			linkID := scenarios[i%len(scenarios)]
			l := h.out.Net.Topo.Link(linkID)
			id, rejected := h.submitRetrying(tenant, QueryRequest{
				Kind:      "whatif",
				FailLinks: []LinkRef{{A: l.A, B: l.B}},
			})
			results[i] = outcome{link: linkID, st: h.await(tenant, id), rejected: rejected}
		}(i)
	}
	wg.Wait()

	totalRejected := 0
	for i, r := range results {
		totalRejected += r.rejected
		if r.st.State != StateDone {
			t.Fatalf("query %d: state %s error %q", i, r.st.State, r.st.Error)
		}
		if r.st.Result == nil || r.st.Result.RIBDigest != want[r.link] {
			got := "<nil>"
			if r.st.Result != nil {
				got = r.st.Result.RIBDigest
			}
			t.Fatalf("query %d (link %s): warm digest %s != cold %s", i, r.link, got, want[r.link])
		}
	}
	if totalRejected == 0 {
		t.Fatalf("no 429s observed: bob's rate limit never engaged")
	}
	t.Logf("completed %d queries across 2 tenants, %d rate-limit rejections retried", total, totalRejected)

	// Telemetry recorded both tenants' admissions.
	snap := h.reg.Gather()
	for _, tenant := range []string{"alice", "bob"} {
		se, ok := snap.Find("serve_queries_total", telemetry.L("tenant", tenant))
		if !ok || se.Value < 1 {
			t.Fatalf("serve_queries_total{tenant=%s} missing or zero", tenant)
		}
	}
	if se, ok := snap.Find("serve_rejected_total", telemetry.L("reason", "rate"), telemetry.L("tenant", "bob")); !ok || se.Value < 1 {
		t.Fatalf("serve_rejected_total{tenant=bob,reason=rate} missing or zero")
	}

	// Clean drain: shutdown completes, then new submissions are refused.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := h.srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	resp, _ := h.do("alice", "POST", "/v1/queries", QueryRequest{Kind: "whatif"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: status %d, want 503", resp.StatusCode)
	}
}

// TestServeSSEStream covers the streaming path: subscribe to a query and see
// its lifecycle events end in a result frame.
func TestServeSSEStream(t *testing.T) {
	h := newHarness(t, Config{Workers: 2})
	l := h.out.Net.Topo.Links()[0]
	id, _ := h.submitRetrying("alice", QueryRequest{
		Kind:      "whatif",
		FailLinks: []LinkRef{{A: l.A, B: l.B}},
	})

	req, _ := http.NewRequest("GET", h.ts.URL+"/v1/queries/"+id, nil)
	req.Header.Set("X-API-Key", "key-alice")
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("SSE GET: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var types []string
	var resultData string
	sc := bufio.NewScanner(resp.Body)
	cur := ""
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			cur = strings.TrimPrefix(line, "event: ")
			types = append(types, cur)
		}
		if strings.HasPrefix(line, "data: ") && cur == "result" {
			resultData = strings.TrimPrefix(line, "data: ")
		}
	}
	if len(types) < 3 {
		t.Fatalf("saw %d events (%v), want at least pending/running/done states", len(types), types)
	}
	if types[len(types)-1] != "result" {
		t.Fatalf("last event %q, want result (events: %v)", types[len(types)-1], types)
	}
	var res QueryResult
	if err := json.Unmarshal([]byte(resultData), &res); err != nil {
		t.Fatalf("decode result frame: %v", err)
	}
	if res.RIBDigest == "" {
		t.Fatalf("result frame carries no rib_digest")
	}
}

// TestServeVerifyAndRIB covers the verify kind and the RIB endpoint.
func TestServeVerifyAndRIB(t *testing.T) {
	h := newHarness(t, Config{Workers: 2})

	// A tautological spec over the base state must hold.
	id, _ := h.submitRetrying("alice", QueryRequest{
		Kind:  "verify",
		Specs: []string{"prefix = 255.255.255.255/32 => PRE = POST"},
	})
	st := h.await("alice", id)
	if st.State != StateDone {
		t.Fatalf("verify query: state %s error %q", st.State, st.Error)
	}
	if st.Result == nil || !st.Result.SpecsOK {
		t.Fatalf("tautological spec did not hold: %+v", st.Result)
	}

	dev := h.out.Net.Topo.Nodes()[0].Name
	resp, body := h.do("alice", "GET", "/v1/networks/wan1/rib?device="+dev+"&limit=10", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rib: status %d: %s", resp.StatusCode, body)
	}
	var rib struct {
		Rows  []RIBRow `json:"rows"`
		Count int      `json:"count"`
	}
	if err := json.Unmarshal(body, &rib); err != nil {
		t.Fatalf("decode rib: %v", err)
	}
	if rib.Count == 0 {
		t.Fatalf("rib query for %s returned no rows", dev)
	}
	for _, row := range rib.Rows {
		if row.Device != dev {
			t.Fatalf("rib row for device %q, filtered for %q", row.Device, dev)
		}
	}
}

// TestServeSyncSubmit exercises ?wait=1: one round trip returns the
// terminal status with the result attached.
func TestServeSyncSubmit(t *testing.T) {
	h := newHarness(t, Config{Workers: 2})
	l := h.out.Net.Topo.Links()[0]
	resp, body := h.do("alice", "POST", "/v1/queries?wait=1", QueryRequest{
		Kind:      "whatif",
		FailLinks: []LinkRef{{A: l.A, B: l.B}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync submit: status %d: %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("sync submit returned non-terminal state %s (error %q)", st.State, st.Error)
	}
	if st.Result == nil || st.Result.RIBDigest == "" {
		t.Fatalf("sync submit returned no result: %+v", st)
	}
}

// TestServeKfailProgress runs a small sweep and checks progress frames and
// the summary.
func TestServeKfailProgress(t *testing.T) {
	h := newHarness(t, Config{Workers: 2})
	id, _ := h.submitRetrying("alice", QueryRequest{
		Kind:         "kfail",
		K:            1,
		MaxScenarios: 24,
		Specs:        []string{"prefix = 255.255.255.255/32 => PRE = POST"},
	})
	st := h.await("alice", id)
	if st.State != StateDone {
		t.Fatalf("kfail query: state %s error %q", st.State, st.Error)
	}
	if st.Result == nil || st.Result.Kfail == nil {
		t.Fatalf("kfail query returned no summary")
	}
	if st.Result.Kfail.Scenarios == 0 || st.Result.Kfail.Scenarios > 24 {
		t.Fatalf("kfail scenarios = %d, want 1..24", st.Result.Kfail.Scenarios)
	}
	if !st.Result.SpecsOK {
		t.Fatalf("tautological spec violated under failures: %+v", st.Result.Kfail)
	}
}

// TestServeDeadlineAndCancel covers per-query deadlines and client
// cancellation.
func TestServeDeadlineAndCancel(t *testing.T) {
	h := newHarness(t, Config{Workers: 1})

	// An absurdly short deadline on a kfail sweep must fail, not hang.
	id, _ := h.submitRetrying("alice", QueryRequest{
		Kind:       "kfail",
		K:          2,
		DeadlineMS: 1,
		Specs:      []string{"prefix = 255.255.255.255/32 => PRE = POST"},
	})
	st := h.await("alice", id)
	if st.State != StateFailed && st.State != StateCanceled {
		t.Fatalf("deadline query: state %s, want failed/canceled", st.State)
	}

	// Cancel a pending query (single worker busy behind a sweep).
	busy, _ := h.submitRetrying("alice", QueryRequest{
		Kind: "kfail", K: 1, MaxScenarios: 200,
		Specs: []string{"prefix = 255.255.255.255/32 => PRE = POST"},
	})
	l := h.out.Net.Topo.Links()[0]
	victim, _ := h.submitRetrying("alice", QueryRequest{
		Kind:      "whatif",
		FailLinks: []LinkRef{{A: l.A, B: l.B}},
	})
	resp, _ := h.do("alice", "DELETE", "/v1/queries/"+victim, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	if st := h.await("alice", victim); st.State != StateCanceled {
		t.Fatalf("cancelled query state %s", st.State)
	}
	h.await("alice", busy)
}

// TestServeTenantIsolation: one tenant cannot see another's queries.
func TestServeTenantIsolation(t *testing.T) {
	h := newHarness(t, Config{Workers: 2})
	l := h.out.Net.Topo.Links()[0]
	id, _ := h.submitRetrying("alice", QueryRequest{
		Kind:      "whatif",
		FailLinks: []LinkRef{{A: l.A, B: l.B}},
	})
	h.await("alice", id)
	resp, _ := h.do("bob", "GET", "/v1/queries/"+id, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant query read: status %d, want 404", resp.StatusCode)
	}
	// And no key at all is a 401.
	req, _ := http.NewRequest("GET", h.ts.URL+"/v1/queries/"+id, nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("unauthenticated GET: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated read: status %d, want 401", resp2.StatusCode)
	}
}

// TestServeHistoryPersists: finished queries land in the WAL-backed history
// and survive a server restart on the same directory.
func TestServeHistoryPersists(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, Config{Workers: 2, HistoryDir: dir, HistorySize: 64})
	l := h.out.Net.Topo.Links()[0]
	id, _ := h.submitRetrying("alice", QueryRequest{
		Kind:      "whatif",
		FailLinks: []LinkRef{{A: l.A, B: l.B}},
	})
	done := h.await("alice", id)

	resp, body := h.do("alice", "GET", "/v1/history", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("history: status %d", resp.StatusCode)
	}
	var entries []HistoryEntry
	if err := json.Unmarshal(body, &entries); err != nil {
		t.Fatalf("decode history: %v", err)
	}
	if len(entries) == 0 || entries[0].ID != id {
		t.Fatalf("history entries = %+v, want newest-first starting with %s", entries, id)
	}
	resp, body = h.do("alice", "GET", "/v1/history/"+id+"/result", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("history result: status %d: %s", resp.StatusCode, body)
	}
	var res QueryResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("decode history result: %v", err)
	}
	if res.RIBDigest != done.Result.RIBDigest {
		t.Fatalf("stored result digest %s != live %s", res.RIBDigest, done.Result.RIBDigest)
	}

	// Restart: a fresh server on the same directory replays the entry.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := h.srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	h2, err := openHistory(dir, 64, h.srv.cfg.Durable, nil)
	if err != nil {
		t.Fatalf("reopen history: %v", err)
	}
	defer h2.Close()
	if got := h2.List("alice", 0); len(got) == 0 || got[0].ID != id {
		t.Fatalf("replayed history = %+v, want entry %s", got, id)
	}
	if res2, err := h2.Result(id); err != nil || res2.RIBDigest != done.Result.RIBDigest {
		t.Fatalf("replayed result: %+v err=%v", res2, err)
	}
}

// TestServeWireUpload round-trips a snapshot through the wire bundle upload.
func TestServeWireUpload(t *testing.T) {
	h := newHarness(t, Config{Workers: 2})
	var buf bytes.Buffer
	if err := EncodeBundle(&buf, h.out.Net, h.out.Inputs, h.out.Flows); err != nil {
		t.Fatalf("EncodeBundle: %v", err)
	}
	req, _ := http.NewRequest("POST", h.ts.URL+"/v1/networks?id=uploaded&activate=false", bytes.NewReader(buf.Bytes()))
	req.Header.Set("X-API-Key", "key-alice")
	req.Header.Set("Content-Type", "application/x-hoyan-wire")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	defer resp.Body.Close()
	var info networkInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode upload response: %v", err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	if info.ID != "uploaded" || info.Active {
		t.Fatalf("upload info = %+v, want id=uploaded inactive", info)
	}
	// The uploaded copy converges to the same base state as the original.
	orig, _ := h.srv.network("wan1")
	if info.BaseDigest != orig.baseDig {
		t.Fatalf("uploaded base digest %s != original %s", info.BaseDigest, orig.baseDig)
	}
	// Active network unchanged.
	if h.srv.Active() != "wan1" {
		t.Fatalf("active network = %s after inactive upload", h.srv.Active())
	}
	// Queries can target the uploaded snapshot explicitly.
	l := h.out.Net.Topo.Links()[0]
	id, _ := h.submitRetrying("alice", QueryRequest{
		Kind:      "whatif",
		NetworkID: "uploaded",
		FailLinks: []LinkRef{{A: l.A, B: l.B}},
	})
	if st := h.await("alice", id); st.State != StateDone {
		t.Fatalf("query on uploaded network: state %s error %q", st.State, st.Error)
	}
}

// ---- unit tests ----

func TestTokenBucket(t *testing.T) {
	tn := &tenant{cfg: TenantConfig{RatePerSec: 10, Burst: 2}}
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := tn.admit(now); !ok {
			t.Fatalf("burst admit %d refused", i)
		}
	}
	ok, retry := tn.admit(now)
	if ok {
		t.Fatalf("admit past burst succeeded")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry hint %v out of range", retry)
	}
	// After the refill interval one more token is available.
	if ok, _ := tn.admit(now.Add(150 * time.Millisecond)); !ok {
		t.Fatalf("admit after refill refused")
	}
}

func TestQueueStrideFairness(t *testing.T) {
	q := newQueue(0)
	heavy := &tenant{cfg: TenantConfig{Name: "heavy", Weight: 3}}
	light := &tenant{cfg: TenantConfig{Name: "light", Weight: 1}}
	for i := 0; i < 40; i++ {
		q.Push(heavy, newQuery(fmt.Sprintf("h%d", i), heavy, QueryRequest{}))
		q.Push(light, newQuery(fmt.Sprintf("l%d", i), light, QueryRequest{}))
	}
	counts := map[string]int{}
	for i := 0; i < 20; i++ {
		qu, err := q.Pop()
		if err != nil {
			t.Fatalf("Pop: %v", err)
		}
		counts[qu.Tenant.cfg.Name]++
	}
	// With weights 3:1, the first 20 pops split ~15:5.
	if counts["heavy"] < 12 || counts["light"] < 3 {
		t.Fatalf("stride split %v, want roughly 3:1", counts)
	}
}

func TestQueueBoundsAndClose(t *testing.T) {
	q := newQueue(2)
	tn := &tenant{cfg: TenantConfig{Name: "x"}}
	q.Push(tn, newQuery("a", tn, QueryRequest{}))
	q.Push(tn, newQuery("b", tn, QueryRequest{}))
	if err := q.Push(tn, newQuery("c", tn, QueryRequest{})); err != ErrQueueFull {
		t.Fatalf("push past bound: %v, want ErrQueueFull", err)
	}
	orphans := q.Close()
	if len(orphans) != 2 {
		t.Fatalf("Close returned %d orphans, want 2", len(orphans))
	}
	if _, err := q.Pop(); err != ErrQueueClosed {
		t.Fatalf("Pop after close: %v, want ErrQueueClosed", err)
	}
	if err := q.Push(tn, newQuery("d", tn, QueryRequest{})); err != ErrQueueClosed {
		t.Fatalf("Push after close: %v, want ErrQueueClosed", err)
	}
}

func TestBundleRoundTrip(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	var buf bytes.Buffer
	if err := EncodeBundle(&buf, out.Net, out.Inputs, out.Flows); err != nil {
		t.Fatalf("EncodeBundle: %v", err)
	}
	net, inputs, flows, err := DecodeBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("DecodeBundle: %v", err)
	}
	if len(net.Devices) != len(out.Net.Devices) {
		t.Fatalf("devices %d != %d", len(net.Devices), len(out.Net.Devices))
	}
	if len(inputs) != len(out.Inputs) || len(flows) != len(out.Flows) {
		t.Fatalf("inputs/flows %d/%d != %d/%d", len(inputs), len(flows), len(out.Inputs), len(out.Flows))
	}
	// The restored model simulates to the same base state.
	a := core.NewEngine(out.Net.Clone(), core.Options{}).Run(out.Inputs, out.Flows)
	b := core.NewEngine(net, core.Options{}).Run(inputs, flows)
	if ribDigest(a.Routes.GlobalRIB()) != ribDigest(b.Routes.GlobalRIB()) {
		t.Fatalf("bundle round trip changed the simulated base state")
	}
}

func TestClosersLIFO(t *testing.T) {
	var c Closers
	var order []string
	c.Add("first", func() error { order = append(order, "first"); return nil })
	c.Add("second", func() error { order = append(order, "second"); return fmt.Errorf("boom") })
	c.Add("third", func() error { order = append(order, "third"); return nil })
	err := c.Close()
	if want := []string{"third", "second", "first"}; strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("close order %v, want %v", order, want)
	}
	if err == nil || !strings.Contains(err.Error(), "second: boom") {
		t.Fatalf("Close error = %v, want to carry second: boom", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestRetryAfterParsable(t *testing.T) {
	// The Retry-After header must be an integer per RFC 7231.
	for _, d := range []time.Duration{time.Millisecond, time.Second, 2500 * time.Millisecond} {
		v := strconv.Itoa(int(mathCeilSeconds(d)))
		if _, err := strconv.Atoi(v); err != nil {
			t.Fatalf("Retry-After %q not an integer", v)
		}
	}
}

func mathCeilSeconds(d time.Duration) int64 {
	s := d / time.Second
	if d%time.Second != 0 {
		s++
	}
	return int64(s)
}
