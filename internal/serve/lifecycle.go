package serve

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
)

// SignalContext returns a context cancelled on SIGINT or SIGTERM — the
// shutdown trigger shared by hoyand, hoyan-master, and hoyan-worker. The
// returned stop function releases the signal registration (a second signal
// then kills the process with the default disposition, so a hung drain can
// still be interrupted).
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// Closers is an ordered shutdown list: components register in startup order
// and Close runs them in reverse (LIFO), so consumers stop before the
// substrates they write to. All errors are collected; every closer runs even
// when earlier ones fail.
type Closers struct {
	mu    sync.Mutex
	names []string
	fns   []func() error
}

// Add registers a named close function. Nil functions are ignored.
func (c *Closers) Add(name string, fn func() error) {
	if fn == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.names = append(c.names, name)
	c.fns = append(c.fns, fn)
}

// Close runs every registered function in reverse registration order and
// returns the collected errors (nil when all succeeded). It is idempotent:
// a second call finds an empty list.
func (c *Closers) Close() error {
	c.mu.Lock()
	names, fns := c.names, c.fns
	c.names, c.fns = nil, nil
	c.mu.Unlock()

	var errs []string
	for i := len(fns) - 1; i >= 0; i-- {
		if err := fns[i](); err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", names[i], err))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("serve: shutdown: %s", strings.Join(errs, "; "))
	}
	return nil
}
