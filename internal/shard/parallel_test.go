package shard

import (
	"testing"

	"hoyan/internal/core"
	"hoyan/internal/gen"
	"hoyan/internal/netmodel"
)

// TestShardParallelEquivalence runs the contract fixpoint with the dirty
// shards of each round simulated concurrently and every sealed BGP fixpoint
// striped (Sim.Parallelism 2), and pins byte-identity with the sequential
// whole-network engine. Under -race this doubles as the concurrent
// sealed-run check: the shards share one base engine's interner, lazy
// topology indexes, and policy caches.
func TestShardParallelEquivalence(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	eng := New(out.Net, out.Inputs, Options{Shards: 3, Sim: core.Options{Parallelism: 2}})
	got, err := eng.Base()
	if err != nil {
		t.Fatal(err)
	}
	ref := core.NewEngine(out.Net, core.Options{Parallelism: 1}).RouteSimulation(out.Inputs).GlobalRIB()
	if !got.Equal(ref) {
		t.Fatalf("parallel sharded base RIB differs from whole-network (%d vs %d rows): %s",
			got.Len(), ref.Len(), diffStr(got, ref))
	}

	// One contained what-if through the warm contract path, still striped.
	contained := 0
	for _, l := range out.Net.Topo.Links() {
		id := l.ID()
		scratch := out.Net.Clone()
		if !scratch.Topo.SetLinkUp(id, false) {
			t.Fatalf("link %v not found in clone", id)
		}
		res, err := eng.WhatIf(scratch, core.Delta{LinksDown: []netmodel.LinkID{id}})
		if err != nil {
			continue
		}
		contained++
		wref := core.NewEngine(scratch, core.Options{Parallelism: 1}).RouteSimulation(out.Inputs).GlobalRIB()
		if !res.RIB.Equal(wref) {
			t.Fatalf("link %v: parallel sharded what-if RIB differs from whole-network: %s",
				id, diffStr(res.RIB, wref))
		}
		if contained >= 3 {
			break
		}
	}
	if contained == 0 {
		t.Fatal("no link failure was contained; the parallel what-if path is untested")
	}
}
