// Package shard implements the sharded global-RIB verifier: the interned
// topology is partitioned into region shards, each shard runs the BGP
// fixpoint boundary-sealed (bgp.Seal) against explicit boundary-route
// contracts, and the master iterates contract-exchange rounds until every
// seam is stable. Per-shard RIBs then stitch byte-identically into the
// whole-network netmodel.GlobalRIB, and intra-shard what-if deltas re-run
// only the touched shard plus a seam re-check.
package shard

import (
	"slices"
	"strconv"
	"strings"

	"hoyan/internal/netmodel"
)

// Partition assigns every device of a topology to one of NumShards shards.
// The assignment is region-aware: device names of the form
// "<class>-<region>-<idx>" group by region, and sorted regions spread evenly
// over the shards so seams follow the (expensive, contract-light) inter-region
// links. Devices without a parseable region fall back to contiguous chunks of
// the sorted name order. The partition is a pure function of the topology's
// device set, so master and workers compute identical partitions
// independently from the shared snapshot.
type Partition struct {
	n       int
	shardOf map[string]int
	members []map[string]bool
}

// Compute partitions topo into at most n shards (clamped to the region count
// when regions parse, and to the device count otherwise, so no shard is
// empty).
func Compute(topo *netmodel.Topology, n int) *Partition {
	ix := topo.Index()
	names := make([]string, 0, ix.NumDevices())
	for i := 0; i < ix.NumDevices(); i++ {
		names = append(names, ix.DevName(netmodel.DevID(i)))
	}
	slices.Sort(names)

	regionOf := make(map[string]int, len(names))
	var regions []int
	var loose []string
	for _, name := range names {
		if r, ok := parseRegion(name); ok {
			regionOf[name] = r
			if !slices.Contains(regions, r) {
				regions = append(regions, r)
			}
		} else {
			loose = append(loose, name)
		}
	}
	slices.Sort(regions)

	if n < 1 {
		n = 1
	}
	if len(regions) > 0 {
		if n > len(regions) {
			n = len(regions)
		}
	} else if n > len(names) && len(names) > 0 {
		n = len(names)
	}

	p := &Partition{n: n, shardOf: make(map[string]int, len(names)), members: make([]map[string]bool, n)}
	for i := range p.members {
		p.members[i] = make(map[string]bool)
	}
	regionShard := make(map[int]int, len(regions))
	for i, r := range regions {
		regionShard[r] = i * n / len(regions)
	}
	for _, name := range names {
		if r, ok := regionOf[name]; ok {
			p.assign(name, regionShard[r])
		}
	}
	for i, name := range loose {
		p.assign(name, i*n/max(1, len(loose)))
	}
	return p
}

func (p *Partition) assign(name string, shard int) {
	p.shardOf[name] = shard
	p.members[shard][name] = true
}

// parseRegion extracts the region number from "<class>-<region>-<idx>".
func parseRegion(name string) (int, bool) {
	parts := strings.Split(name, "-")
	if len(parts) < 3 {
		return 0, false
	}
	r, err := strconv.Atoi(parts[1])
	if err != nil || r < 0 {
		return 0, false
	}
	return r, true
}

// NumShards returns the effective shard count after clamping.
func (p *Partition) NumShards() int { return p.n }

// ShardOf returns the shard holding dev; unknown devices map to shard 0.
func (p *Partition) ShardOf(dev string) int { return p.shardOf[dev] }

// Known reports whether dev was part of the partitioned topology.
func (p *Partition) Known(dev string) bool {
	_, ok := p.shardOf[dev]
	return ok
}

// Members returns shard i's device set. Callers must not modify it.
func (p *Partition) Members(i int) map[string]bool { return p.members[i] }

// Sizes returns the device count per shard.
func (p *Partition) Sizes() []int {
	out := make([]int, p.n)
	for _, s := range p.shardOf {
		out[s]++
	}
	return out
}
