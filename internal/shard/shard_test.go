package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"hoyan/internal/core"
	"hoyan/internal/gen"
	"hoyan/internal/netmodel"
)

func TestPartitionRegionAware(t *testing.T) {
	out := gen.Generate(gen.WAN(1)) // 3 regions
	p := Compute(out.Net.Topo, 3)
	if p.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", p.NumShards())
	}
	// Every device of one region lands in one shard.
	for r := 0; r < 3; r++ {
		want := -1
		for _, n := range out.Net.DeviceNames() {
			if reg, ok := parseRegion(n); !ok || reg != r {
				continue
			}
			if want == -1 {
				want = p.ShardOf(n)
			} else if got := p.ShardOf(n); got != want {
				t.Errorf("region %d split: %s in shard %d, want %d", r, n, got, want)
			}
		}
	}
	// Clamping: more shards than regions collapses to the region count.
	if got := Compute(out.Net.Topo, 99).NumShards(); got != 3 {
		t.Errorf("clamped NumShards = %d, want 3", got)
	}
	sizes := p.Sizes()
	total := 0
	for i, s := range sizes {
		if s == 0 {
			t.Errorf("shard %d is empty", i)
		}
		total += s
	}
	if total != len(out.Net.DeviceNames()) {
		t.Errorf("partition covers %d devices, want %d", total, len(out.Net.DeviceNames()))
	}
}

// TestBaseStitchEquivalence pins the tentpole's hard requirement at the
// in-process layer: the stitched sharded base RIB is byte-identical to the
// whole-network engine's.
func TestBaseStitchEquivalence(t *testing.T) {
	for _, shards := range []int{2, 3} {
		out := gen.Generate(gen.WAN(1))
		eng := New(out.Net, out.Inputs, Options{Shards: shards})
		got, err := eng.Base()
		if err != nil {
			t.Fatal(err)
		}
		ref := core.NewEngine(out.Net, core.Options{}).RouteSimulation(out.Inputs).GlobalRIB()
		if !got.Equal(ref) {
			t.Fatalf("shards=%d: stitched base RIB differs from whole-network (%d vs %d rows): %s",
				shards, got.Len(), ref.Len(), diffStr(got, ref))
		}
		if eng.Metrics().FullFallbacks.Value() != 0 {
			t.Errorf("shards=%d: base run fell back", shards)
		}
	}
}

// TestWhatIfStitchEquivalence verifies contained deltas through the sharded
// warm-start path against full scenario re-simulation.
func TestWhatIfStitchEquivalence(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	eng := New(out.Net, out.Inputs, Options{Shards: 3})
	if _, err := eng.Base(); err != nil {
		t.Fatal(err)
	}
	contained, fellBack := 0, 0
	for _, l := range out.Net.Topo.Links() {
		id := l.ID()
		scratch := out.Net.Clone()
		if !scratch.Topo.SetLinkUp(id, false) {
			t.Fatalf("link %v not found in clone", id)
		}
		delta := core.Delta{LinksDown: []netmodel.LinkID{id}}
		res, err := eng.WhatIf(scratch, delta)
		if err != nil {
			fellBack++
			continue
		}
		contained++
		ref := core.NewEngine(scratch, core.Options{}).RouteSimulation(out.Inputs).GlobalRIB()
		if !res.RIB.Equal(ref) {
			t.Fatalf("link %v: sharded what-if RIB differs from whole-network (%d vs %d rows): %s",
				id, res.RIB.Len(), ref.Len(), diffStr(res.RIB, ref))
		}
	}
	if contained == 0 {
		t.Fatal("no link failure was contained; the sharded what-if path is untested")
	}
	t.Logf("contained=%d fellback=%d", contained, fellBack)
}

// TestWhatIfNodeFailureEquivalence covers node-down deltas, where sessions of
// outside peers can die: only containable nodes ride the shard path, and
// results stay byte-identical.
func TestWhatIfNodeFailureEquivalence(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	eng := New(out.Net, out.Inputs, Options{Shards: 3})
	if _, err := eng.Base(); err != nil {
		t.Fatal(err)
	}
	contained := 0
	for _, name := range out.Net.DeviceNames() {
		scratch := out.Net.Clone()
		if !scratch.Topo.SetNodeUp(name, false) {
			continue
		}
		res, err := eng.WhatIf(scratch, core.Delta{NodesDown: []string{name}})
		if err != nil {
			continue
		}
		contained++
		ref := core.NewEngine(scratch, core.Options{}).RouteSimulation(out.Inputs).GlobalRIB()
		if !res.RIB.Equal(ref) {
			t.Fatalf("node %s: sharded what-if RIB differs (%d vs %d rows): %s",
				name, res.RIB.Len(), ref.Len(), diffStr(res.RIB, ref))
		}
	}
	t.Logf("contained node failures: %d", contained)
}

// TestWhatIfRandomizedEquivalence throws seeded random multi-element deltas
// at the engine; every delta must either fall back or stitch byte-identical.
func TestWhatIfRandomizedEquivalence(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	eng := New(out.Net, out.Inputs, Options{Shards: 3})
	if _, err := eng.Base(); err != nil {
		t.Fatal(err)
	}
	links := out.Net.Topo.Links()
	rnd := rand.New(rand.NewSource(8))
	contained := 0
	for trial := 0; trial < 25; trial++ {
		scratch := out.Net.Clone()
		var delta core.Delta
		for i := 0; i < 1+rnd.Intn(2); i++ {
			id := links[rnd.Intn(len(links))].ID()
			if scratch.Topo.SetLinkUp(id, false) {
				delta.LinksDown = append(delta.LinksDown, id)
			}
		}
		if len(delta.LinksDown) == 0 {
			continue
		}
		res, err := eng.WhatIf(scratch, delta)
		if err != nil {
			continue
		}
		contained++
		ref := core.NewEngine(scratch, core.Options{}).RouteSimulation(out.Inputs).GlobalRIB()
		if !res.RIB.Equal(ref) {
			t.Fatalf("trial %d (%v): sharded what-if RIB differs: %s",
				trial, delta.LinksDown, diffStr(res.RIB, ref))
		}
	}
	if contained == 0 {
		t.Fatal("no randomized delta was contained")
	}
	t.Logf("contained randomized deltas: %d/25", contained)
}

func diffStr(got, want *netmodel.GlobalRIB) string {
	onlyGot, onlyWant := got.Diff(want)
	if len(onlyGot) > 4 {
		onlyGot = onlyGot[:4]
	}
	if len(onlyWant) > 4 {
		onlyWant = onlyWant[:4]
	}
	return fmt.Sprintf("only-sharded=%v only-whole=%v", onlyGot, onlyWant)
}
