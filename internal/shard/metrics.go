package shard

import "hoyan/internal/telemetry"

// Metrics bundles the sharded verifier's instruments. All fields are nil-safe
// through the registry (a nil registry yields detached instruments).
type Metrics struct {
	// Rounds counts contract-exchange rounds executed (shard_rounds_total).
	Rounds *telemetry.Counter
	// ContractRoutes gauges the advertisement count across all seams after
	// the latest converged run (shard_contract_routes).
	ContractRoutes *telemetry.Gauge
	// SeamMismatches counts shards re-dirtied after having converged — the
	// what-if seam re-checks that found an unstable contract
	// (shard_seam_mismatches_total).
	SeamMismatches *telemetry.Counter
	// FullFallbacks counts runs that abandoned the sharded path for the
	// whole-network engine (shard_full_fallbacks_total).
	FullFallbacks *telemetry.Counter
}

// NewMetrics registers the shard instruments on reg (nil: detached).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Rounds:         reg.Counter("shard_rounds_total", "contract-exchange rounds executed"),
		ContractRoutes: reg.Gauge("shard_contract_routes", "boundary advertisements across all seams"),
		SeamMismatches: reg.Counter("shard_seam_mismatches_total", "converged shards re-dirtied by a changed seam contract"),
		FullFallbacks:  reg.Counter("shard_full_fallbacks_total", "runs that fell back to the whole-network path"),
	}
}
