package shard

import (
	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/isis"
	"hoyan/internal/netmodel"
)

// TouchedShards maps a topology delta to the set of shards holding its
// elements' endpoints. The second result is false when the delta changes
// something no shard can own (unknown devices, or input-route changes, which
// alter originations globally).
func TouchedShards(p *Partition, d core.Delta) (map[int]bool, bool) {
	if len(d.AddInputs) > 0 || len(d.DropInputs) > 0 {
		return nil, false
	}
	touched := make(map[int]bool)
	add := func(dev string) bool {
		if !p.Known(dev) {
			return false
		}
		touched[dev2shard(p, dev)] = true
		return true
	}
	for _, id := range d.LinksDown {
		if !add(id.A) || !add(id.B) {
			return nil, false
		}
	}
	for _, id := range d.LinksUp {
		if !add(id.A) || !add(id.B) {
			return nil, false
		}
	}
	for _, n := range d.NodesDown {
		if !add(n) {
			return nil, false
		}
	}
	for _, n := range d.NodesUp {
		if !add(n) {
			return nil, false
		}
	}
	if len(touched) == 0 {
		return nil, false
	}
	return touched, true
}

func dev2shard(p *Partition, dev string) int { return p.ShardOf(dev) }

// Contained reports whether a topology delta provably leaves every device
// outside the touched shards with a byte-identical routing outcome, so the
// what-if can re-run only the touched shards (plus seam re-check) and reuse
// the base rows everywhere else. The check mirrors the exact IGP facts the
// BGP decision consumes:
//
//   - every delta endpoint lives in a touched shard, so outside devices keep
//     their incident links (direct-subnet and FindLink fallbacks unchanged);
//   - no outside device has a BGP session peer whose node went down or came
//     up (buildSessions gates on the peer's node.Up);
//   - for every outside device, IGP reachability to each session peer is
//     unchanged (iBGP liveness), and the IGP distance to every next-hop
//     owner referenced by its base rows is unchanged (next-hop resolution
//     and the IGP-cost tie-break).
//
// Outside devices' inbound messages are the touched shards' exports (checked
// separately by the contract fixpoint's seam re-check) plus other outside
// devices' exports, which are unchanged by induction.
func Contained(net *config.Network, p *Partition, touched map[int]bool,
	baseIGP, scenIGP *isis.Result, delta core.Delta, ownersByDev map[string][]string) bool {
	changedNode := make(map[string]bool, len(delta.NodesDown)+len(delta.NodesUp))
	for _, n := range delta.NodesDown {
		changedNode[n] = true
	}
	for _, n := range delta.NodesUp {
		changedNode[n] = true
	}
	for _, name := range net.DeviceNames() {
		if touched[p.ShardOf(name)] {
			continue
		}
		d := net.Devices[name]
		for _, nb := range d.Neighbors {
			peer := net.Topo.AddrOwner(nb.Addr)
			if peer == "" || peer == name {
				continue
			}
			if changedNode[peer] {
				return false
			}
			if baseIGP.Reachable(name, peer) != scenIGP.Reachable(name, peer) {
				return false
			}
		}
		for _, owner := range ownersByDev[name] {
			bc, bok := baseIGP.Cost(name, owner)
			sc, sok := scenIGP.Cost(name, owner)
			if bok != sok || bc != sc {
				return false
			}
		}
	}
	return true
}

// NextHopOwners indexes, per device, the distinct next-hop-owner devices
// referenced by the rows — the set of IGP distances each device's BGP
// decision depends on. Address ownership never changes across up/down
// deltas, so the index computed on the base rows serves every scenario.
func NextHopOwners(topo *netmodel.Topology, rows []netmodel.Route) map[string][]string {
	seen := make(map[[2]string]bool)
	out := make(map[string][]string)
	for i := range rows {
		r := &rows[i]
		if !r.NextHop.IsValid() {
			continue
		}
		owner := topo.AddrOwner(r.NextHop)
		if owner == "" || owner == r.Device {
			continue
		}
		k := [2]string{r.Device, owner}
		if seen[k] {
			continue
		}
		seen[k] = true
		out[r.Device] = append(out[r.Device], owner)
	}
	return out
}
