package shard

import (
	"errors"
	"slices"

	"hoyan/internal/bgp"
	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/ec"
	"hoyan/internal/netmodel"
	"hoyan/internal/par"
	"hoyan/internal/telemetry"
)

// ErrNotContained signals that a what-if delta cannot be proven to stay
// inside the touched shards (or that the contract fixpoint did not converge);
// the caller must take the whole-network path instead.
var ErrNotContained = errors.New("shard: delta not contained, take the whole-network path")

// Options configures the in-process sharded verifier.
type Options struct {
	// Shards is the requested shard count (clamped by Compute).
	Shards int
	// MaxRounds bounds the contract fixpoint (<=0: DefaultMaxRounds).
	MaxRounds int
	// Sim configures the underlying core engines.
	Sim core.Options
	// Registry receives the shard_* metrics (nil: detached).
	Registry *telemetry.Registry
}

// Engine runs sharded verification in process: the base network is verified
// once through the contract fixpoint, and intra-shard what-if deltas re-run
// only the touched shards against the warm-started contract state. Results
// are byte-identical to the whole-network core engine; the point is that
// each sealed run covers only a shard's worth of devices.
type Engine struct {
	net       *config.Network
	inputs    []netmodel.Route
	opts      core.Options
	part      *Partition
	maxRounds int
	met       *Metrics

	baseEng     *core.Engine
	ecs         *ec.RouteECs
	repsByShard [][]netmodel.Route
	baseState   *State
	baseRIB     *netmodel.GlobalRIB
	baseRows    []netmodel.Route
	// baseExpanded caches each shard's EC-expanded rows so untouched shards
	// stitch into what-if results without re-expanding.
	baseExpanded [][]netmodel.Route
	ownersByDev  map[string][]string
	baseFellBack bool
}

// New prepares a sharded engine over the base network snapshot.
func New(net *config.Network, inputs []netmodel.Route, opts Options) *Engine {
	return &Engine{
		net:       net,
		inputs:    inputs,
		opts:      opts.Sim,
		part:      Compute(net.Topo, opts.Shards),
		maxRounds: opts.MaxRounds,
		met:       NewMetrics(opts.Registry),
	}
}

// Partition exposes the computed device partition.
func (e *Engine) Partition() *Partition { return e.part }

// Metrics exposes the shard instruments.
func (e *Engine) Metrics() *Metrics { return e.met }

// BaseState exposes the converged base contract state (nil before Base, or
// after a base fallback).
func (e *Engine) BaseState() *State { return e.baseState }

// BaseEngine exposes the core engine over the base snapshot (available after
// Base).
func (e *Engine) BaseEngine() *core.Engine { return e.baseEng }

// splitReps partitions the representative input routes by originating device.
// Rows at devices outside the topology go to shard 0, where the seal skips
// them — exactly as the whole-network originate path would.
func (e *Engine) splitReps(reps []netmodel.Route) [][]netmodel.Route {
	out := make([][]netmodel.Route, e.part.NumShards())
	for _, r := range reps {
		i := e.part.ShardOf(r.Device)
		out[i] = append(out[i], r)
	}
	return out
}

// runner builds a RoundFn running sealed simulations on eng. Dirty shards of
// one contract round are mutually independent (each reads only its frozen
// inbound contract and writes its own indexed slot), so they fan out on the
// par pool under Options.Sim.Parallelism; within a shard, the sealed BGP
// fixpoint stripes on the same setting. Slot-indexed results keep the round
// outcome byte-identical however the shards interleave. Parallelism 1 is
// the sequential reference; the per-shard fleet parallelism of dsim is
// unaffected.
func (e *Engine) runner(eng *core.Engine) RoundFn {
	return func(round int, dirty []int, inbound [][]netmodel.BoundaryAdv) ([][]netmodel.BoundaryAdv, [][]netmodel.Route, error) {
		exports := make([][]netmodel.BoundaryAdv, len(dirty))
		rows := make([][]netmodel.Route, len(dirty))
		par.ForEach(e.opts.Parallelism, len(dirty), func(k int) {
			i := dirty[k]
			res := eng.RouteSimulationSealed(e.repsByShard[i], &bgp.Seal{
				Inside:  e.part.Members(i),
				Inbound: inbound[i],
			})
			exports[k] = res.BGP.BoundaryOut
			rows[k] = res.GlobalRIB().Rows()
		})
		return exports, rows, nil
	}
}

// Base runs the base-network contract fixpoint and stitches the global RIB.
// When the fixpoint does not converge within MaxRounds, it falls back to the
// whole-network engine (counted in shard_full_fallbacks_total); either way
// the returned RIB is byte-identical to core.Engine.RouteSimulation's.
func (e *Engine) Base() (*netmodel.GlobalRIB, error) {
	if e.baseRIB != nil {
		return e.baseRIB, nil
	}
	e.baseEng = core.NewEngine(e.net, e.opts)
	reps := e.inputs
	if !e.opts.DisableRouteECs {
		e.ecs = ec.ComputeRouteECs(e.net, e.baseEng.Profiles(), e.inputs, e.opts.Parallelism)
		reps = e.ecs.Representatives()
	}
	e.repsByShard = e.splitReps(reps)

	allDirty := make([]int, e.part.NumShards())
	for i := range allDirty {
		allDirty[i] = i
	}
	st, err := Iterate(e.part, e.maxRounds, allDirty, nil, e.runner(e.baseEng))
	if err != nil {
		return nil, err
	}
	e.met.Rounds.Add(int64(st.Rounds))
	e.met.SeamMismatches.Add(int64(st.SeamChanges))
	if !st.Converged {
		e.met.FullFallbacks.Inc()
		e.baseFellBack = true
		res := e.baseEng.RouteSimulation(e.inputs)
		e.baseRIB = res.GlobalRIB()
		e.baseRows = e.baseRIB.Rows()
		return e.baseRIB, nil
	}
	e.met.ContractRoutes.Set(float64(st.ContractRoutes()))
	e.baseState = st
	e.baseExpanded = make([][]netmodel.Route, st.NumShards)
	var preRows []netmodel.Route
	for i := range st.Rows {
		// Each cached segment is sorted once here so every later stitch is a
		// merge of sorted runs instead of a full re-sort.
		e.baseExpanded[i] = ExpandRows(e.ecs, st.Rows[i])
		slices.SortFunc(e.baseExpanded[i], netmodel.CompareRoutes)
		preRows = append(preRows, st.Rows[i]...)
	}
	e.baseRIB = netmodel.NewGlobalRIBFromSorted(netmodel.MergeSortedRoutes(e.baseExpanded))
	e.baseRows = e.baseRIB.Rows()
	e.ownersByDev = NextHopOwners(e.net.Topo, preRows)
	return e.baseRIB, nil
}

// BaseRows returns the stitched base rows (after Base).
func (e *Engine) BaseRows() []netmodel.Route { return e.baseRows }

// Result is the outcome of a contained what-if run.
type Result struct {
	// RIB is the stitched scenario global RIB, byte-identical to a
	// whole-network re-simulation of the scenario.
	RIB *netmodel.GlobalRIB
	// Eng is the scenario core engine (for traffic simulation).
	Eng *core.Engine
	// Rounds counts the contract rounds this what-if spent.
	Rounds int
	// ReusedShards counts shards whose base rows were stitched unchanged.
	ReusedShards int
}

// WhatIf re-verifies a topology-delta scenario through the sharded path:
// when the delta is contained in its touched shards, only those shards (plus
// any shard whose seam contract shifts) re-run sealed on the scenario
// engine, warm-started from the base contract state. scratch must be the
// base network with the delta already applied (the caller owns it for the
// duration). Returns ErrNotContained when the scenario must take the
// whole-network path.
func (e *Engine) WhatIf(scratch *config.Network, delta core.Delta) (*Result, error) {
	if e.baseState == nil {
		return nil, ErrNotContained
	}
	touched, ok := TouchedShards(e.part, delta)
	if !ok {
		e.met.FullFallbacks.Inc()
		return nil, ErrNotContained
	}
	scenEng := core.NewEngine(scratch, e.opts)
	if !Contained(e.net, e.part, touched, e.baseEng.IGP(), scenEng.IGP(), delta, e.ownersByDev) {
		e.met.FullFallbacks.Inc()
		return nil, ErrNotContained
	}
	var dirty []int
	for i := 0; i < e.part.NumShards(); i++ {
		if touched[i] {
			dirty = append(dirty, i)
		}
	}
	st, err := Iterate(e.part, e.maxRounds, dirty, e.baseState, e.runner(scenEng))
	if err != nil {
		return nil, err
	}
	e.met.Rounds.Add(int64(st.Rounds))
	e.met.SeamMismatches.Add(int64(st.SeamChanges))
	if !st.Converged {
		e.met.FullFallbacks.Inc()
		return nil, ErrNotContained
	}
	e.met.ContractRoutes.Set(float64(st.ContractRoutes()))
	segs := make([][]netmodel.Route, len(st.Rows))
	reused := 0
	for i := range st.Rows {
		if SameRows(st.Rows[i], e.baseState.Rows[i]) {
			segs[i] = e.baseExpanded[i] // already sorted
			reused++
			continue
		}
		segs[i] = ExpandRows(e.ecs, st.Rows[i])
		slices.SortFunc(segs[i], netmodel.CompareRoutes)
	}
	return &Result{
		RIB:          netmodel.NewGlobalRIBFromSorted(netmodel.MergeSortedRoutes(segs)),
		Eng:          scenEng,
		Rounds:       st.Rounds,
		ReusedShards: reused,
	}, nil
}

// SameRows reports whether two slices share identity (same backing array,
// length, and offset) — the marker Iterate leaves on shards it never re-ran.
func SameRows(a, b []netmodel.Route) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// ExpandRows applies the EC expansion to flat per-shard rows by
// reconstructing the per-(device, vrf) tables and expanding each — the same
// clones core.Engine.RouteSimulation installs on its live tables, so the
// stitched multiset matches the whole-network run's.
func ExpandRows(ecs *ec.RouteECs, rows []netmodel.Route) []netmodel.Route {
	if ecs == nil || len(rows) == 0 {
		return rows
	}
	type tk struct{ dev, vrf string }
	ribs := make(map[tk]*netmodel.RIB)
	var order []tk
	for _, r := range rows {
		k := tk{r.Device, r.VRF}
		t, ok := ribs[k]
		if !ok {
			t = netmodel.NewRIB(r.Device, r.VRF)
			ribs[k] = t
			order = append(order, k)
		}
		t.Add(r)
	}
	var out []netmodel.Route
	for _, k := range order {
		t := ribs[k]
		ecs.ExpandRIB(t)
		out = append(out, t.All()...)
	}
	return out
}
