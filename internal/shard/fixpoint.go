package shard

import (
	"bytes"
	"encoding/binary"

	"hoyan/internal/netmodel"
)

// DefaultMaxRounds bounds the contract-exchange fixpoint when the caller does
// not: contracts normally stabilize in two or three rounds (one propagation
// per seam-crossing hop), so a generous multiple of the shard count leaves
// room for long dependency chains while still catching oscillation.
const DefaultMaxRounds = 16

// RoundFn runs one contract-exchange round: it simulates the dirty shards
// boundary-sealed against the given inbound contracts and returns, aligned
// with dirty's order, each shard's outbound contract and final route rows.
// inbound is indexed by shard (all shards present; only dirty entries are
// consumed this round).
type RoundFn func(round int, dirty []int, inbound [][]netmodel.BoundaryAdv) (exports [][]netmodel.BoundaryAdv, rows [][]netmodel.Route, err error)

// State is the converged (or abandoned) outcome of a contract fixpoint. A
// base run's State warm-starts what-if runs: shards whose inbound contract
// never changes keep their Exports and Rows untouched, so the caller can
// reuse derived artifacts (expanded rows) by slice identity.
type State struct {
	NumShards int
	// Exports holds each shard's canonical outbound contract.
	Exports [][]netmodel.BoundaryAdv
	// Rows holds each shard's final (pre-EC-expansion) route rows.
	Rows [][]netmodel.Route
	// Rounds counts contract-exchange rounds executed by the Iterate call(s)
	// that produced this state.
	Rounds int
	// SeamChanges counts shards re-dirtied because a seam contract they had
	// already consumed changed — the "seam mismatch" signal of a what-if
	// whose touched-shard-only hypothesis proved insufficient.
	SeamChanges int
	// Converged is false when MaxRounds ran out with seams still unstable;
	// callers must fall back to the whole-network path.
	Converged bool

	// inSigs memoizes the signature of the inbound contract each shard last
	// consumed (nil: the shard never ran).
	inSigs [][]byte
}

func newState(n int) *State {
	return &State{
		NumShards: n,
		Exports:   make([][]netmodel.BoundaryAdv, n),
		Rows:      make([][]netmodel.Route, n),
		inSigs:    make([][]byte, n),
	}
}

// clone copies the per-shard slots (sharing the underlying slices, which are
// treated as immutable once recorded) and resets the per-run counters.
func (st *State) clone() *State {
	out := newState(st.NumShards)
	copy(out.Exports, st.Exports)
	copy(out.Rows, st.Rows)
	copy(out.inSigs, st.inSigs)
	return out
}

// ContractRoutes returns the total advertisement count across all seams.
func (st *State) ContractRoutes() int {
	total := 0
	for _, exp := range st.Exports {
		total += len(exp)
	}
	return total
}

// inboundFor redistributes the shards' exports into per-receiving-shard
// inbound contracts, canonicalized.
func inboundFor(p *Partition, exports [][]netmodel.BoundaryAdv) [][]netmodel.BoundaryAdv {
	in := make([][]netmodel.BoundaryAdv, p.NumShards())
	for _, exp := range exports {
		for _, adv := range exp {
			to := p.ShardOf(adv.To)
			in[to] = append(in[to], adv)
		}
	}
	for i := range in {
		netmodel.CanonicalizeBoundary(in[i])
	}
	return in
}

// contractSig returns an injective encoding of a canonical contract. Each
// advertisement's signature is self-delimiting (length-prefixed strings,
// explicit counts), so concatenation under a leading count stays injective.
func contractSig(advs []netmodel.BoundaryAdv) []byte {
	return appendContractSig(nil, advs)
}

// appendContractSig is contractSig appending into a caller-owned buffer, for
// transient comparisons that draw scratch from the netmodel signature pool.
func appendContractSig(dst []byte, advs []netmodel.BoundaryAdv) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(advs)))
	for i := range advs {
		dst = advs[i].AppendSignature(dst)
	}
	return dst
}

// Iterate drives the contract-exchange fixpoint: starting from prev (nil for
// a cold start) with the given initially dirty shards, it repeatedly runs the
// dirty set sealed against the current contracts, then re-dirties every shard
// whose inbound contract changed (or that has never run), until no shard is
// dirty or maxRounds (<=0: DefaultMaxRounds) runs out. When the dirty set
// empties, every shard's exports are consistent with every other's — the
// composed state is a whole-network fixpoint.
func Iterate(p *Partition, maxRounds int, dirty []int, prev *State, run RoundFn) (*State, error) {
	n := p.NumShards()
	var st *State
	if prev == nil {
		st = newState(n)
	} else {
		st = prev.clone()
	}
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	pend := make([]bool, n)
	for _, i := range dirty {
		pend[i] = true
	}
	for {
		var list []int
		for i, d := range pend {
			if d {
				list = append(list, i)
			}
		}
		if len(list) == 0 {
			st.Converged = true
			return st, nil
		}
		if st.Rounds >= maxRounds {
			st.Converged = false
			return st, nil
		}
		st.Rounds++
		in := inboundFor(p, st.Exports)
		exports, rows, err := run(st.Rounds-1, list, in)
		if err != nil {
			return nil, err
		}
		for k, i := range list {
			st.Exports[i] = netmodel.CanonicalizeBoundary(exports[k])
			st.Rows[i] = rows[k]
			st.inSigs[i] = contractSig(in[i])
		}
		next := inboundFor(p, st.Exports)
		// The next-round signatures are compared and dropped (only inSigs
		// persists), so they share one pooled scratch buffer.
		buf := netmodel.GetSigBuf()
		for i := 0; i < n; i++ {
			switch {
			case st.inSigs[i] == nil:
				pend[i] = true
			default:
				*buf = appendContractSig((*buf)[:0], next[i])
				if !bytes.Equal(st.inSigs[i], *buf) {
					if !pend[i] {
						st.SeamChanges++
					}
					pend[i] = true
				} else {
					pend[i] = false
				}
			}
		}
		netmodel.PutSigBuf(buf)
	}
}
