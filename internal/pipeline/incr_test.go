package pipeline

import (
	"reflect"
	"testing"

	"hoyan/internal/core"
	"hoyan/internal/gen"
	"hoyan/internal/intent"
	"hoyan/internal/scenario"
)

// verifyBothModes runs one scenario's plan through Verify with incremental
// forking on and off and asserts the outcomes agree on everything an operator
// sees: verdict, reports, and the updated snapshot.
func verifyBothModes(t *testing.T, sc *scenario.Scenario) {
	t.Helper()
	inc := New(sc.Net, sc.Inputs, sc.Flows, core.Options{})
	ref := New(sc.Net, sc.Inputs, sc.Flows, core.Options{DisableIncremental: true})

	got, errInc := inc.Verify(sc.Plan, sc.Intents)
	want, errRef := ref.Verify(sc.Plan, sc.Intents)
	if (errInc == nil) != (errRef == nil) {
		t.Fatalf("%s: error mismatch: incremental %v, reference %v", sc.Name, errInc, errRef)
	}
	if errInc != nil {
		if !sc.WantApplyError {
			t.Fatalf("%s: unexpected apply error %v", sc.Name, errInc)
		}
		return
	}
	if got.OK != want.OK {
		t.Fatalf("%s: verdict mismatch: incremental %v, reference %v\nincremental reports: %+v\nreference reports: %+v",
			sc.Name, got.OK, want.OK, got.Reports, want.Reports)
	}
	if !reflect.DeepEqual(got.Reports, want.Reports) {
		t.Fatalf("%s: reports differ:\n%+v\nvs\n%+v", sc.Name, got.Reports, want.Reports)
	}
	if !got.UpdateSnap.RIB.Equal(want.UpdateSnap.RIB) {
		t.Fatalf("%s: updated RIBs differ", sc.Name)
	}
	if !reflect.DeepEqual(got.UpdateSnap.Paths, want.UpdateSnap.Paths) {
		t.Fatalf("%s: updated paths differ", sc.Name)
	}
	if !reflect.DeepEqual(got.UpdateSnap.Load, want.UpdateSnap.Load) {
		t.Fatalf("%s: updated loads differ", sc.Name)
	}
	if got.OK != sc.WantOK {
		t.Errorf("%s: verdict %v, scenario expects %v", sc.Name, got.OK, sc.WantOK)
	}
}

// TestVerifyIncrementalMatchesFullOnCatalog runs every Table 2 change type
// through Verify with and without DisableIncremental. Pure-delta types
// (topology-adjust, new-prefix, prefix-reclamation) take the fork path;
// command-carrying types fall back to full simulation — either way the
// outcomes must match byte for byte.
func TestVerifyIncrementalMatchesFullOnCatalog(t *testing.T) {
	for _, sc := range scenario.Table2Catalog() {
		t.Run(string(sc.Type), func(t *testing.T) { verifyBothModes(t, sc) })
	}
}

func TestVerifyIncrementalMatchesFullOnCaseStudies(t *testing.T) {
	for _, sc := range []*scenario.Scenario{scenario.Fig10a(), scenario.Fig10b()} {
		t.Run(sc.Name, func(t *testing.T) { verifyBothModes(t, sc) })
	}
}

// TestVerifyPureDeltaTakesForkPath asserts the routing decision itself: a
// toggles-only plan must verify as an incremental fork (visible through
// LastForkStats), while a command-carrying plan must not.
func TestVerifyPureDeltaTakesForkPath(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	sys := New(out.Net, out.Inputs, out.Flows, core.Options{})

	plan := scenario.LinkFailurePlan(out.Net.Topo.Links()[0].ID())
	if _, err := sys.Verify(plan, nil); err != nil {
		t.Fatal(err)
	}
	stats, forked := sys.LastForkStats()
	if !forked {
		t.Fatal("pure-delta plan must take the fork path")
	}
	if stats.Full {
		t.Error("link-down fork fell back to full simulation")
	}
	if stats.SPFReused == 0 {
		t.Error("fork reused no SPF sources")
	}

	if d, pure := plan.Delta(); !pure || len(d.LinksDown) != 1 {
		t.Errorf("LinkFailurePlan must convert to a pure one-link delta, got %+v pure=%v", d, pure)
	}
	if _, pure := scenario.Table2Catalog()[0].Plan.Delta(); pure {
		t.Error("a command-carrying plan must not convert to a pure delta")
	}
}

// TestVerifyLinkFailureSweepIncremental sweeps a handful of single-link
// failures through the pipeline both ways and checks load intents agree.
func TestVerifyLinkFailureSweepIncremental(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	intents := []intent.Intent{intent.LoadIntent{MaxUtilization: 1.0}}
	inc := New(out.Net, out.Inputs, out.Flows, core.Options{})
	ref := New(out.Net, out.Inputs, out.Flows, core.Options{DisableIncremental: true})
	plans := scenario.LinkFailureSweep(out.Net)
	step := len(plans)/6 + 1
	for i := 0; i < len(plans); i += step {
		got, err := inc.Verify(plans[i], intents)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Verify(plans[i], intents)
		if err != nil {
			t.Fatal(err)
		}
		if got.OK != want.OK || !reflect.DeepEqual(got.Reports, want.Reports) {
			t.Fatalf("%s: sweep outcome mismatch", plans[i].ID)
		}
		if !reflect.DeepEqual(got.UpdateSnap.Load, want.UpdateSnap.Load) {
			t.Fatalf("%s: sweep loads differ", plans[i].ID)
		}
	}
}
