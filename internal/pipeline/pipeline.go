// Package pipeline wires the Figure 2 change-verification flow end to end:
// pre-processing (base model + base simulation, computed once and cached),
// then per-request incremental model update, route + traffic simulation of
// the updated network — centralized or distributed — and intent checking
// with counterexample output.
package pipeline

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"hoyan/internal/change"
	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/dsim"
	"hoyan/internal/durable"
	"hoyan/internal/intent"
	"hoyan/internal/mq"
	"hoyan/internal/netmodel"
	"hoyan/internal/objstore"
	"hoyan/internal/taskdb"
	"hoyan/internal/telemetry"
)

// System is a Hoyan deployment over one base network: it owns the
// pre-processed base model, input routes/flows, and the cached base
// simulation results every change verification compares against.
//
// Opts.Parallelism reaches every simulation the system runs: the centralized
// path passes it straight to the engine, and the distributed path ships it to
// workers inside each subtask message.
type System struct {
	Base   *config.Network
	Inputs []netmodel.Route
	Flows  []netmodel.Flow
	Opts   core.Options

	// Workers > 0 runs the updated-network simulation on a local
	// distributed cluster with that many working servers; 0 simulates
	// centralized (single server, as the original Hoyan).
	Workers int
	// Subtasks used when distributed (the paper uses 100 for routes and 128
	// for flows at full scale).
	RouteSubtasks   int
	TrafficSubtasks int
	// Shards, when > 1, runs the distributed route stage through the sharded
	// verifier: the topology is partitioned into that many region shards,
	// each worker runs a boundary-sealed fixpoint inside its shard, and the
	// master iterates contract-exchange rounds until the seams are stable.
	// Results are byte-identical to the whole-network path; a non-converging
	// seam falls back to it (counted in shard_full_fallbacks_total).
	Shards int
	// Fault-tolerance knobs for the distributed path, forwarded to the
	// cluster master; zero values keep the dsim defaults.
	LeaseTimeout time.Duration
	MaxAttempts  int

	// Telemetry gives each distributed run a metric registry and tracer per
	// role; the aggregated snapshot and spans land in LastRunReport.
	Telemetry bool

	// DataDir, when set, backs each distributed run's substrates with
	// WAL-based disk persistence under <DataDir>/<taskID> (restart-safe runs;
	// see dsim.StartLocalDurable). Empty keeps the in-memory substrates.
	DataDir string
	// Fsync is the durability policy for DataDir-backed runs.
	Fsync durable.Policy

	baseEng    *core.Engine
	baseSnap   *intent.Snapshot
	lastReport RunReport
	lastFork   core.ForkStats
	forked     bool
}

// RunIO is the measured substrate I/O of one distributed simulation run:
// object-store transfer counters plus the workers' aggregated cache stats.
type RunIO struct {
	Store objstore.Stats
	Cache dsim.CacheStats
}

// StageReport is one pipeline stage's wall time and object-store bytes moved
// (in + out deltas across the stage).
type StageReport struct {
	Name     string
	Duration time.Duration
	Bytes    int64
}

// RunReport is the full observability record of one distributed simulation
// run. It supersedes RunIO (kept as a compatibility view via LastRunIO).
type RunReport struct {
	TaskID string
	// Stages is the master-side per-stage breakdown, in execution order.
	Stages []StageReport
	Store  objstore.Stats
	Cache  dsim.CacheStats
	Queue  mq.Stats
	// Metrics is the fleet-wide merged metric snapshot and Spans the run's
	// trace (master + workers); both nil unless Telemetry was set.
	Metrics telemetry.Snapshot
	Spans   []telemetry.SpanRecord
	// Intern is the indexed core's ID-table footprint for the run — devices,
	// links, and input prefixes interned into dense IDs — nil when the run
	// had the index disabled (core.Options.DisableIndex).
	Intern *netmodel.InternStats
	// Shard describes the sharded route stage — nil when the run used the
	// whole-network path (System.Shards <= 1).
	Shard *ShardReport
}

// ShardReport summarizes one sharded route stage: the partition size, how
// many contract-exchange rounds the seams took to stabilize, the total
// boundary routes exchanged, and whether the stage fell back to the
// whole-network path.
type ShardReport struct {
	Shards         int
	Rounds         int
	ContractRoutes int
	FellBack       bool
}

// WriteBreakdown renders the per-stage time/bytes table plus substrate
// totals.
func (r RunReport) WriteBreakdown(w io.Writer) {
	fmt.Fprintf(w, "run %s\n", r.TaskID)
	fmt.Fprintf(w, "  %-18s %12s %14s\n", "stage", "time", "store bytes")
	var total time.Duration
	for _, st := range r.Stages {
		fmt.Fprintf(w, "  %-18s %12s %14d\n", st.Name, st.Duration.Round(time.Microsecond), st.Bytes)
		total += st.Duration
	}
	fmt.Fprintf(w, "  %-18s %12s\n", "total", total.Round(time.Microsecond))
	fmt.Fprintf(w, "  store: %d puts / %d gets, %d B in / %d B out\n",
		r.Store.Puts, r.Store.Gets, r.Store.BytesIn, r.Store.BytesOut)
	fmt.Fprintf(w, "  queue: %d pushed / %d popped\n", r.Queue.Pushes, r.Queue.Pops)
	fmt.Fprintf(w, "  cache: %d/%d snapshot hits, %d/%d RIB hits, %d B saved\n",
		r.Cache.SnapshotHits, r.Cache.SnapshotHits+r.Cache.SnapshotMisses,
		r.Cache.RIBFileHits, r.Cache.RIBFileHits+r.Cache.RIBFileMisses,
		r.Cache.BytesSaved)
	if r.Intern != nil {
		fmt.Fprintf(w, "  intern: %d devices, %d links, %d prefixes, %d B ID tables\n",
			r.Intern.Devices, r.Intern.Links, r.Intern.Prefixes, r.Intern.TableBytes)
	}
	if r.Shard != nil {
		mode := "converged"
		if r.Shard.FellBack {
			mode = "fell back to whole-network"
		}
		fmt.Fprintf(w, "  shard: %d shards, %d contract rounds, %d boundary routes (%s)\n",
			r.Shard.Shards, r.Shard.Rounds, r.Shard.ContractRoutes, mode)
	}
}

// LastRunReport returns the full report of the most recent distributed
// simulation this system ran (the zero value if none has).
func (s *System) LastRunReport() RunReport { return s.lastReport }

// LastRunIO returns the I/O counters of the most recent distributed
// simulation this system ran (the zero value if none has).
func (s *System) LastRunIO() RunIO {
	return RunIO{Store: s.lastReport.Store, Cache: s.lastReport.Cache}
}

// New creates a system over the base network.
func New(base *config.Network, inputs []netmodel.Route, flows []netmodel.Flow, opts core.Options) *System {
	return &System{Base: base, Inputs: inputs, Flows: flows, Opts: opts, RouteSubtasks: 16, TrafficSubtasks: 16}
}

// Simulate runs one route + traffic simulation of the base network on the
// configured deployment — distributed when Workers > 0, centralized
// otherwise. Distributed runs leave their full observability record in
// LastRunReport, which makes this the entry point for ops tooling that wants
// the per-stage breakdown without a change plan.
func (s *System) Simulate(taskID string) (*intent.Snapshot, error) {
	if s.Workers > 0 {
		return s.simulateDistributed(s.Base, s.Inputs, s.Flows, taskID)
	}
	return s.simulate(s.Base, s.Inputs, s.Flows), nil
}

// BaseSnapshot returns the cached base simulation state, computing it on
// first use (the daily pre-processing phase). The base engine captures its
// converged state, so later pure-delta change plans verify as incremental
// forks instead of from-scratch simulations.
func (s *System) BaseSnapshot() *intent.Snapshot {
	if s.baseSnap == nil {
		res := s.baseEngine().BaseRun(s.Inputs, s.Flows)
		s.baseSnap = snapshotOf(res, s.Base)
		s.lastReport.Intern = s.baseEng.InternStats()
	}
	return s.baseSnap
}

// baseEngine returns the cached engine over the base network.
func (s *System) baseEngine() *core.Engine {
	if s.baseEng == nil {
		s.baseEng = core.NewEngine(s.Base, s.Opts)
	}
	return s.baseEng
}

// LastForkStats reports the work avoided by the most recent incremental
// verification; ok is false when no Verify has taken the fork path yet.
func (s *System) LastForkStats() (core.ForkStats, bool) { return s.lastFork, s.forked }

// simulate runs route + traffic simulation centralized.
func (s *System) simulate(net *config.Network, inputs []netmodel.Route, flows []netmodel.Flow) *intent.Snapshot {
	eng := core.NewEngine(net, s.Opts)
	snap := snapshotOf(eng.Run(inputs, flows), net)
	s.lastReport.Intern = eng.InternStats()
	return snap
}

func snapshotOf(res *core.Result, net *config.Network) *intent.Snapshot {
	snap := &intent.Snapshot{
		RIB:       res.Routes.GlobalRIB(),
		Bandwidth: bandwidths(net),
	}
	if res.Traffic != nil {
		snap.Paths = res.Traffic.Traffic.Paths
		snap.Load = res.Traffic.Traffic.Load
	}
	return snap
}

// simulateDistributed runs the same pipeline on a local worker cluster,
// assembling a RunReport (per-stage time and store-byte breakdown, substrate
// counters, and — with Telemetry set — the merged metric snapshot and trace).
func (s *System) simulateDistributed(net *config.Network, inputs []netmodel.Route, flows []netmodel.Flow, taskID string) (*intent.Snapshot, error) {
	opts := dsim.LocalOptions{Workers: s.Workers, Telemetry: s.Telemetry}
	if s.DataDir != "" {
		// Disk-backed substrates, one directory per run: the run survives a
		// process restart (hoyan-master -resume picks it back up).
		opts.DataDir = filepath.Join(s.DataDir, taskID)
		opts.Fsync = s.Fsync
	} else {
		opts.Store = objstore.NewMemory()
		opts.Tasks = taskdb.NewMemory()
	}
	cluster, err := dsim.StartLocalDurable(opts)
	if err != nil {
		return nil, fmt.Errorf("pipeline: opening durable substrates: %w", err)
	}
	storeStats := func() objstore.Stats {
		if sp, ok := cluster.Svc.Store.(objstore.StatsProvider); ok {
			return sp.Stats()
		}
		return objstore.Stats{}
	}
	report := RunReport{TaskID: taskID}
	if !s.Opts.DisableIndex {
		// The master-side view of the run's ID-table footprint: every worker
		// interns the full topology plus its input subset, so the whole-input
		// interner describes what the fleet holds in aggregate per engine.
		in := netmodel.NewInterner()
		in.InternTopology(net.Topo)
		for i := range inputs {
			in.InternPrefix(inputs[i].Prefix)
		}
		st := in.Stats()
		report.Intern = &st
	}
	defer func() {
		report.Store = storeStats()
		report.Cache = cluster.CacheStats()
		if sp, ok := cluster.Svc.Queue.(mq.StatsProvider); ok {
			report.Queue = sp.Stats()
		}
		report.Metrics = cluster.MetricsSnapshot()
		report.Spans = cluster.TraceSpans()
		s.lastReport = report
		cluster.Stop()
	}()
	m := cluster.Master
	if s.LeaseTimeout > 0 {
		m.LeaseTimeout = s.LeaseTimeout
	}
	if s.MaxAttempts > 0 {
		m.MaxAttempts = s.MaxAttempts
	}
	runSpan := m.BeginRun("run " + taskID)
	defer runSpan.End()

	// stage times fn and attributes the store bytes it moved.
	stage := func(name string, fn func() error) error {
		before := storeStats()
		start := time.Now()
		err := fn()
		after := storeStats()
		report.Stages = append(report.Stages, StageReport{
			Name:     name,
			Duration: time.Since(start),
			Bytes:    (after.BytesIn + after.BytesOut) - (before.BytesIn + before.BytesOut),
		})
		return err
	}

	var snapKey string
	if err := stage("upload_snapshot", func() (err error) {
		snapKey, err = m.UploadSnapshot(taskID, net)
		return err
	}); err != nil {
		return nil, err
	}
	var rt *dsim.RouteTask
	if s.Shards > 1 {
		// Sharded route stage: per-shard boundary-sealed fixpoints under
		// master-driven contract-exchange rounds, stitched into one result.
		// Enqueue, wait, and stitch happen inside Base, so the stage is one
		// entry instead of the enqueue/wait pair.
		v := m.NewShardVerifier(snapKey, net, inputs, s.Shards, 0, s.Opts)
		if err := stage("shard_route", func() (err error) {
			rt, err = v.Base(taskID, s.RouteSubtasks)
			return err
		}); err != nil {
			return nil, err
		}
		report.Shard = &ShardReport{
			Shards:         v.Partition().NumShards(),
			Rounds:         v.LastRounds,
			ContractRoutes: v.ContractRoutes(),
			FellBack:       v.BaseFellBack,
		}
	} else {
		if err := stage("route_enqueue", func() (err error) {
			rt, err = m.StartRouteSimulation(taskID, snapKey, inputs, s.RouteSubtasks, s.Opts)
			return err
		}); err != nil {
			return nil, err
		}
		if err := stage("route_wait", func() error {
			return m.Wait(taskID, "route", rt.Subtasks)
		}); err != nil {
			return nil, err
		}
	}
	var rib *netmodel.GlobalRIB
	if err := stage("route_collect", func() (err error) {
		rib, err = m.CollectRouteResults(rt)
		return err
	}); err != nil {
		return nil, err
	}
	snap := &intent.Snapshot{RIB: rib, Bandwidth: bandwidths(net)}
	if len(flows) > 0 {
		var tt *dsim.TrafficTask
		if err := stage("traffic_enqueue", func() (err error) {
			tt, err = m.StartTrafficSimulation(taskID, rt, flows, s.TrafficSubtasks, dsim.StrategyOrdered, s.Opts)
			return err
		}); err != nil {
			return nil, err
		}
		if err := stage("traffic_wait", func() error {
			return m.Wait(taskID, "traffic", tt.Subtasks)
		}); err != nil {
			return nil, err
		}
		var sum *dsim.TrafficSummary
		if err := stage("traffic_collect", func() (err error) {
			sum, err = m.CollectTrafficResults(tt)
			return err
		}); err != nil {
			return nil, err
		}
		snap.Paths = sum.Paths
		snap.Load = sum.Load
	}
	return snap, nil
}

func bandwidths(net *config.Network) map[netmodel.LinkID]float64 {
	out := make(map[netmodel.LinkID]float64)
	for _, l := range net.Topo.Links() {
		out[l.ID()] = l.Bandwidth
	}
	return out
}

// Outcome is the result of one change verification request.
type Outcome struct {
	Plan    *change.Plan
	Reports []intent.Report
	OK      bool

	Updated    *config.Network
	BaseSnap   *intent.Snapshot
	UpdateSnap *intent.Snapshot
}

// Verify runs one change verification request: apply the plan to a copy of
// the base model, simulate the updated network, and check the intents
// against base and updated states.
func (s *System) Verify(plan *change.Plan, intents []intent.Intent) (*Outcome, error) {
	updated, err := plan.Apply(s.Base)
	if err != nil {
		return nil, fmt.Errorf("pipeline: applying change plan: %w", err)
	}
	inputs := plan.ApplyInputs(s.Inputs)

	var upSnap *intent.Snapshot
	if s.Workers > 0 {
		upSnap, err = s.simulateDistributed(updated, inputs, s.Flows, "verify-"+plan.ID)
		if err != nil {
			return nil, fmt.Errorf("pipeline: distributed simulation: %w", err)
		}
	} else if d, pure := plan.Delta(); pure && !s.Opts.DisableIncremental {
		// Pure-delta plans (up/down toggles, input changes) re-simulate as
		// warm-started forks of the cached base run — byte-identical to the
		// full path, recomputing only what the delta touched.
		s.BaseSnapshot()
		res, stats := s.baseEngine().Fork(updated, d)
		s.lastFork, s.forked = stats, true
		upSnap = snapshotOf(res, updated)
	} else {
		upSnap = s.simulate(updated, inputs, s.Flows)
	}

	ctx := &intent.Context{Base: *s.BaseSnapshot(), Updated: *upSnap}
	reports, ok := intent.Verify(ctx, intents)
	return &Outcome{
		Plan: plan, Reports: reports, OK: ok,
		Updated: updated, BaseSnap: s.BaseSnapshot(), UpdateSnap: upSnap,
	}, nil
}

// Audit runs the daily configuration-auditing use case (§6.2): it checks
// invariants against the base state alone (base == updated).
func (s *System) Audit(intents []intent.Intent) ([]intent.Report, bool) {
	snap := s.BaseSnapshot()
	ctx := &intent.Context{Base: *snap, Updated: *snap}
	return intent.Verify(ctx, intents)
}
