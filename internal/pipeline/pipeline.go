// Package pipeline wires the Figure 2 change-verification flow end to end:
// pre-processing (base model + base simulation, computed once and cached),
// then per-request incremental model update, route + traffic simulation of
// the updated network — centralized or distributed — and intent checking
// with counterexample output.
package pipeline

import (
	"fmt"
	"time"

	"hoyan/internal/change"
	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/dsim"
	"hoyan/internal/intent"
	"hoyan/internal/netmodel"
	"hoyan/internal/objstore"
	"hoyan/internal/taskdb"
)

// System is a Hoyan deployment over one base network: it owns the
// pre-processed base model, input routes/flows, and the cached base
// simulation results every change verification compares against.
//
// Opts.Parallelism reaches every simulation the system runs: the centralized
// path passes it straight to the engine, and the distributed path ships it to
// workers inside each subtask message.
type System struct {
	Base   *config.Network
	Inputs []netmodel.Route
	Flows  []netmodel.Flow
	Opts   core.Options

	// Workers > 0 runs the updated-network simulation on a local
	// distributed cluster with that many working servers; 0 simulates
	// centralized (single server, as the original Hoyan).
	Workers int
	// Subtasks used when distributed (the paper uses 100 for routes and 128
	// for flows at full scale).
	RouteSubtasks   int
	TrafficSubtasks int
	// Fault-tolerance knobs for the distributed path, forwarded to the
	// cluster master; zero values keep the dsim defaults.
	LeaseTimeout time.Duration
	MaxAttempts  int

	baseSnap *intent.Snapshot
	lastIO   RunIO
}

// RunIO is the measured substrate I/O of one distributed simulation run:
// object-store transfer counters plus the workers' aggregated cache stats.
type RunIO struct {
	Store objstore.Stats
	Cache dsim.CacheStats
}

// LastRunIO returns the I/O counters of the most recent distributed
// simulation this system ran (the zero value if none has).
func (s *System) LastRunIO() RunIO { return s.lastIO }

// New creates a system over the base network.
func New(base *config.Network, inputs []netmodel.Route, flows []netmodel.Flow, opts core.Options) *System {
	return &System{Base: base, Inputs: inputs, Flows: flows, Opts: opts, RouteSubtasks: 16, TrafficSubtasks: 16}
}

// BaseSnapshot returns the cached base simulation state, computing it on
// first use (the daily pre-processing phase).
func (s *System) BaseSnapshot() *intent.Snapshot {
	if s.baseSnap == nil {
		s.baseSnap = s.simulate(s.Base, s.Inputs, s.Flows)
	}
	return s.baseSnap
}

// simulate runs route + traffic simulation centralized.
func (s *System) simulate(net *config.Network, inputs []netmodel.Route, flows []netmodel.Flow) *intent.Snapshot {
	eng := core.NewEngine(net, s.Opts)
	res := eng.Run(inputs, flows)
	snap := &intent.Snapshot{
		RIB:       res.Routes.GlobalRIB(),
		Bandwidth: bandwidths(net),
	}
	if res.Traffic != nil {
		snap.Paths = res.Traffic.Traffic.Paths
		snap.Load = res.Traffic.Traffic.Load
	}
	return snap
}

// simulateDistributed runs the same pipeline on a local worker cluster.
func (s *System) simulateDistributed(net *config.Network, inputs []netmodel.Route, flows []netmodel.Flow, taskID string) (*intent.Snapshot, error) {
	store := objstore.NewMemory()
	cluster := dsim.StartLocalWithStore(s.Workers, store, taskdb.NewMemory())
	defer func() {
		s.lastIO = RunIO{Store: store.Stats(), Cache: cluster.CacheStats()}
		cluster.Stop()
	}()
	m := cluster.Master
	if s.LeaseTimeout > 0 {
		m.LeaseTimeout = s.LeaseTimeout
	}
	if s.MaxAttempts > 0 {
		m.MaxAttempts = s.MaxAttempts
	}

	snapKey, err := m.UploadSnapshot(taskID, net)
	if err != nil {
		return nil, err
	}
	rt, err := m.StartRouteSimulation(taskID, snapKey, inputs, s.RouteSubtasks, s.Opts)
	if err != nil {
		return nil, err
	}
	if err := m.Wait(taskID, "route", rt.Subtasks); err != nil {
		return nil, err
	}
	rib, err := m.CollectRouteResults(rt)
	if err != nil {
		return nil, err
	}
	snap := &intent.Snapshot{RIB: rib, Bandwidth: bandwidths(net)}
	if len(flows) > 0 {
		tt, err := m.StartTrafficSimulation(taskID, rt, flows, s.TrafficSubtasks, dsim.StrategyOrdered, s.Opts)
		if err != nil {
			return nil, err
		}
		if err := m.Wait(taskID, "traffic", tt.Subtasks); err != nil {
			return nil, err
		}
		sum, err := m.CollectTrafficResults(tt)
		if err != nil {
			return nil, err
		}
		snap.Paths = sum.Paths
		snap.Load = sum.Load
	}
	return snap, nil
}

func bandwidths(net *config.Network) map[netmodel.LinkID]float64 {
	out := make(map[netmodel.LinkID]float64)
	for _, l := range net.Topo.Links() {
		out[l.ID()] = l.Bandwidth
	}
	return out
}

// Outcome is the result of one change verification request.
type Outcome struct {
	Plan    *change.Plan
	Reports []intent.Report
	OK      bool

	Updated    *config.Network
	BaseSnap   *intent.Snapshot
	UpdateSnap *intent.Snapshot
}

// Verify runs one change verification request: apply the plan to a copy of
// the base model, simulate the updated network, and check the intents
// against base and updated states.
func (s *System) Verify(plan *change.Plan, intents []intent.Intent) (*Outcome, error) {
	updated, err := plan.Apply(s.Base)
	if err != nil {
		return nil, fmt.Errorf("pipeline: applying change plan: %w", err)
	}
	inputs := plan.ApplyInputs(s.Inputs)

	var upSnap *intent.Snapshot
	if s.Workers > 0 {
		upSnap, err = s.simulateDistributed(updated, inputs, s.Flows, "verify-"+plan.ID)
		if err != nil {
			return nil, fmt.Errorf("pipeline: distributed simulation: %w", err)
		}
	} else {
		upSnap = s.simulate(updated, inputs, s.Flows)
	}

	ctx := &intent.Context{Base: *s.BaseSnapshot(), Updated: *upSnap}
	reports, ok := intent.Verify(ctx, intents)
	return &Outcome{
		Plan: plan, Reports: reports, OK: ok,
		Updated: updated, BaseSnap: s.BaseSnapshot(), UpdateSnap: upSnap,
	}, nil
}

// Audit runs the daily configuration-auditing use case (§6.2): it checks
// invariants against the base state alone (base == updated).
func (s *System) Audit(intents []intent.Intent) ([]intent.Report, bool) {
	snap := s.BaseSnapshot()
	ctx := &intent.Context{Base: *snap, Updated: *snap}
	return intent.Verify(ctx, intents)
}
