package pipeline

import (
	"net/netip"
	"testing"

	"hoyan/internal/change"
	"hoyan/internal/core"
	"hoyan/internal/gen"
	"hoyan/internal/intent"
	"hoyan/internal/netmodel"
)

func TestBaseSnapshotCached(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	sys := New(out.Net, out.Inputs, out.Flows, core.Options{})
	s1 := sys.BaseSnapshot()
	s2 := sys.BaseSnapshot()
	if s1 != s2 {
		t.Error("base snapshot must be computed once (pre-processing)")
	}
	if s1.RIB.Len() == 0 || len(s1.Paths) == 0 {
		t.Error("base snapshot incomplete")
	}
	if len(s1.Bandwidth) != len(out.Net.Topo.Links()) {
		t.Error("bandwidth map incomplete")
	}
}

func TestVerifyNewPrefixBothModes(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	p := netip.MustParsePrefix("10.99.0.0/24")
	plan := &change.Plan{
		ID: "t", Type: change.NewPrefix,
		NewInputs: []netmodel.Route{{
			Device: "dc-0-0", VRF: "global", Prefix: p,
			NextHop: out.Net.Devices["dc-0-0"].Loopback,
		}},
	}
	intents := []intent.Intent{intent.ReachIntent{Prefix: p, Devices: []string{"rr-1-0"}, Want: true}}

	central := New(out.Net, out.Inputs, out.Flows, core.Options{})
	got, err := central.Verify(plan, intents)
	if err != nil {
		t.Fatal(err)
	}
	if !got.OK {
		t.Fatalf("centralized verify failed: %+v", got.Reports)
	}

	dist := New(out.Net, out.Inputs, out.Flows, core.Options{})
	dist.Workers = 2
	dist.RouteSubtasks = 6
	dist.TrafficSubtasks = 6
	got2, err := dist.Verify(plan, intents)
	if err != nil {
		t.Fatal(err)
	}
	if !got2.OK {
		t.Fatalf("distributed verify failed: %+v", got2.Reports)
	}
}

func TestVerifyApplyErrorPropagates(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	sys := New(out.Net, out.Inputs, nil, core.Options{})
	plan := &change.Plan{ID: "t", Commands: map[string]string{"nope": "isis enable\n"}}
	if _, err := sys.Verify(plan, nil); err == nil {
		t.Error("apply error must propagate")
	}
}

func TestAudit(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	sys := New(out.Net, out.Inputs, out.Flows, core.Options{})
	reports, ok := sys.Audit([]intent.Intent{
		intent.RouteIntent{Spec: "PRE = POST"}, // trivially true: base vs base
		intent.LoadIntent{MaxUtilization: 0.99},
	})
	if !ok || len(reports) != 2 {
		t.Errorf("audit: ok=%v reports=%+v", ok, reports)
	}
}

// TestSimulateShardedMatchesWholeNetwork pins that a sharded distributed run
// produces the same RIB and traffic snapshot as the whole-network distributed
// path, and that the run report carries the shard stage summary and metrics.
func TestSimulateShardedMatchesWholeNetwork(t *testing.T) {
	out := gen.Generate(gen.WAN(1))

	whole := New(out.Net, out.Inputs, out.Flows, core.Options{})
	whole.Workers = 3
	whole.RouteSubtasks = 6
	whole.TrafficSubtasks = 6
	wsnap, err := whole.Simulate("whole")
	if err != nil {
		t.Fatal(err)
	}

	sharded := New(out.Net, out.Inputs, out.Flows, core.Options{})
	sharded.Workers = 3
	sharded.RouteSubtasks = 6
	sharded.TrafficSubtasks = 6
	sharded.Shards = 3
	sharded.Telemetry = true
	ssnap, err := sharded.Simulate("sharded")
	if err != nil {
		t.Fatal(err)
	}

	if !wsnap.RIB.Equal(ssnap.RIB) {
		a, b := wsnap.RIB.Diff(ssnap.RIB)
		t.Fatalf("sharded RIB != whole-network RIB (diff %d/%d)", len(a), len(b))
	}
	for id, want := range wsnap.Load {
		if d := ssnap.Load[id] - want; d > 1e-3 || d < -1e-3 {
			t.Errorf("load[%s]: sharded %v, whole-network %v", id, ssnap.Load[id], want)
		}
	}

	rep := sharded.LastRunReport()
	if rep.Shard == nil {
		t.Fatal("sharded run report missing Shard summary")
	}
	if rep.Shard.Shards != 3 || rep.Shard.Rounds < 1 || rep.Shard.ContractRoutes == 0 {
		t.Errorf("implausible shard report: %+v", rep.Shard)
	}
	if rep.Shard.FellBack {
		t.Error("sharded base stage fell back to the whole-network path")
	}
	stages := map[string]bool{}
	for _, st := range rep.Stages {
		stages[st.Name] = true
	}
	if !stages["shard_route"] || stages["route_enqueue"] {
		t.Errorf("stage list should use shard_route in place of route_enqueue: %+v", rep.Stages)
	}
	var rounds float64
	for _, m := range rep.Metrics {
		if m.Name == "shard_rounds_total" {
			rounds = m.Value
		}
	}
	if rounds < 1 {
		t.Errorf("shard_rounds_total not in merged metrics snapshot: %v", rounds)
	}
}
