package pipeline

import (
	"net/netip"
	"testing"

	"hoyan/internal/change"
	"hoyan/internal/core"
	"hoyan/internal/gen"
	"hoyan/internal/intent"
	"hoyan/internal/netmodel"
)

func TestBaseSnapshotCached(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	sys := New(out.Net, out.Inputs, out.Flows, core.Options{})
	s1 := sys.BaseSnapshot()
	s2 := sys.BaseSnapshot()
	if s1 != s2 {
		t.Error("base snapshot must be computed once (pre-processing)")
	}
	if s1.RIB.Len() == 0 || len(s1.Paths) == 0 {
		t.Error("base snapshot incomplete")
	}
	if len(s1.Bandwidth) != len(out.Net.Topo.Links()) {
		t.Error("bandwidth map incomplete")
	}
}

func TestVerifyNewPrefixBothModes(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	p := netip.MustParsePrefix("10.99.0.0/24")
	plan := &change.Plan{
		ID: "t", Type: change.NewPrefix,
		NewInputs: []netmodel.Route{{
			Device: "dc-0-0", VRF: "global", Prefix: p,
			NextHop: out.Net.Devices["dc-0-0"].Loopback,
		}},
	}
	intents := []intent.Intent{intent.ReachIntent{Prefix: p, Devices: []string{"rr-1-0"}, Want: true}}

	central := New(out.Net, out.Inputs, out.Flows, core.Options{})
	got, err := central.Verify(plan, intents)
	if err != nil {
		t.Fatal(err)
	}
	if !got.OK {
		t.Fatalf("centralized verify failed: %+v", got.Reports)
	}

	dist := New(out.Net, out.Inputs, out.Flows, core.Options{})
	dist.Workers = 2
	dist.RouteSubtasks = 6
	dist.TrafficSubtasks = 6
	got2, err := dist.Verify(plan, intents)
	if err != nil {
		t.Fatal(err)
	}
	if !got2.OK {
		t.Fatalf("distributed verify failed: %+v", got2.Reports)
	}
}

func TestVerifyApplyErrorPropagates(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	sys := New(out.Net, out.Inputs, nil, core.Options{})
	plan := &change.Plan{ID: "t", Commands: map[string]string{"nope": "isis enable\n"}}
	if _, err := sys.Verify(plan, nil); err == nil {
		t.Error("apply error must propagate")
	}
}

func TestAudit(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	sys := New(out.Net, out.Inputs, out.Flows, core.Options{})
	reports, ok := sys.Audit([]intent.Intent{
		intent.RouteIntent{Spec: "PRE = POST"}, // trivially true: base vs base
		intent.LoadIntent{MaxUtilization: 0.99},
	})
	if !ok || len(reports) != 2 {
		t.Errorf("audit: ok=%v reports=%+v", ok, reports)
	}
}
