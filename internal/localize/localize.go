// Package localize implements automatic misconfiguration localization — the
// first item of the paper's §7 future work ("localizing the misconfiguration
// that causes the violation still relies on experts' manual analysis").
//
// Given a change plan whose verification fails, the localizer delta-debugs
// the plan: it splits each device's command block into stanzas (the units a
// CLI session applies atomically: a section header plus its indented body),
// then greedily searches for a minimal subset of stanzas that still triggers
// the violation. Stanzas outside that subset are exonerated; the remainder
// — typically one or two stanzas — is the place the expert should look.
// When even the *empty* plan violates the intents, the defect predates the
// change (Table 6's "existing misconfiguration" class) and the localizer
// says so.
package localize

import (
	"fmt"
	"strings"

	"hoyan/internal/change"
	"hoyan/internal/intent"
	"hoyan/internal/pipeline"
	"slices"
)

// Stanza is one atomic unit of a device's command block.
type Stanza struct {
	Device string
	Text   string
	// Index is the stanza's position within its device block.
	Index int
}

func (s Stanza) String() string {
	first := s.Text
	if i := strings.IndexByte(first, '\n'); i >= 0 {
		first = first[:i]
	}
	return fmt.Sprintf("%s#%d: %s", s.Device, s.Index, strings.TrimSpace(first))
}

// Result is the localization outcome.
type Result struct {
	// Culprits is a minimal set of stanzas that still breaks the
	// regression intents (intents the base state satisfied).
	Culprits []Stanza
	// Regressions are the intents the change broke (satisfied before,
	// violated after); the Culprits explain these.
	Regressions []string
	// Unachieved are intents violated both before and after the change:
	// either the change fails to achieve its goal or — as in the Figure
	// 10(a) case — a pre-existing misconfiguration blocks it. Localization
	// by command removal cannot explain these (nothing removed restores
	// them), so they are reported for expert attention.
	Unachieved []string
	// Trials counts the verification runs spent.
	Trials int
}

// Options bounds the search.
type Options struct {
	// MaxTrials caps verification runs (each is a full simulation).
	MaxTrials int
}

// Localize finds a minimal subset of the plan's command stanzas that still
// violates the intents. The plan's non-command parts (topology deltas, new
// devices, input changes) are always applied: the localizer narrows down
// *commands*, the dominant root-cause class of Table 6.
func Localize(sys *pipeline.System, plan *change.Plan, intents []intent.Intent, o Options) (*Result, error) {
	if o.MaxTrials == 0 {
		o.MaxTrials = 64
	}
	res := &Result{}

	stanzas := SplitPlan(plan)
	check := func(keep []Stanza, its []intent.Intent) (allOK bool, perIntent []bool, err error) {
		if res.Trials >= o.MaxTrials {
			return false, nil, fmt.Errorf("localize: trial budget exhausted after %d runs", res.Trials)
		}
		res.Trials++
		trial := rebuildPlan(plan, keep)
		out, err := sys.Verify(trial, its)
		if err != nil {
			// A plan that cannot even apply counts as all-violating: the
			// culprit subset contains the unapplicable command.
			return false, make([]bool, len(its)), nil
		}
		per := make([]bool, len(its))
		for i, rep := range out.Reports {
			per[i] = rep.Satisfied
		}
		return out.OK, per, nil
	}

	fullOK, fullPer, err := check(stanzas, intents)
	if err != nil {
		return nil, err
	}
	if fullOK {
		return nil, fmt.Errorf("localize: the full plan verifies clean; nothing to localize")
	}
	_, emptyPer, err := check(nil, intents)
	if err != nil {
		return nil, err
	}

	// Partition the violated intents: regressions (held before the change,
	// broken after) are delta-debuggable; goals unachieved in both states
	// cannot be explained by removing commands.
	var regressions []intent.Intent
	for i, it := range intents {
		if fullPer[i] {
			continue
		}
		if emptyPer[i] {
			regressions = append(regressions, it)
			res.Regressions = append(res.Regressions, it.Describe())
		} else {
			res.Unachieved = append(res.Unachieved, it.Describe())
		}
	}
	if len(regressions) == 0 {
		return res, nil
	}

	violates := func(keep []Stanza) (bool, error) {
		ok, _, err := check(keep, regressions)
		return !ok, err
	}

	// Greedy ddmin-style reduction: repeatedly try to drop one stanza; keep
	// the drop when the violation persists. This yields a 1-minimal subset.
	current := append([]Stanza(nil), stanzas...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(current); i++ {
			candidate := append(append([]Stanza(nil), current[:i]...), current[i+1:]...)
			bad, err := violates(candidate)
			if err != nil {
				return nil, err
			}
			if bad {
				current = candidate
				changed = true
				i--
			}
		}
	}
	res.Culprits = current
	return res, nil
}

// SplitPlan breaks every device command block of the plan into stanzas. A
// stanza starts at a non-indented line and extends over the following
// indented lines; '!' and '#' separators terminate stanzas and are kept with
// them (so re-assembled blocks remain valid CLI input).
func SplitPlan(plan *change.Plan) []Stanza {
	var out []Stanza
	devices := make([]string, 0, len(plan.Commands))
	for d := range plan.Commands {
		devices = append(devices, d)
	}
	slices.Sort(devices)
	for _, dev := range devices {
		for i, text := range SplitStanzas(plan.Commands[dev]) {
			out = append(out, Stanza{Device: dev, Text: text, Index: i})
		}
	}
	return out
}

// SplitStanzas splits one command block into stanza texts.
func SplitStanzas(block string) []string {
	var out []string
	var cur []string
	flush := func() {
		if len(cur) > 0 {
			out = append(out, strings.Join(cur, "\n")+"\n")
			cur = nil
		}
	}
	for _, line := range strings.Split(block, "\n") {
		trimmed := strings.TrimRight(line, " \t\r")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		sep := strings.TrimSpace(trimmed) == "!" || strings.TrimSpace(trimmed) == "#"
		indented := strings.HasPrefix(line, " ") || strings.HasPrefix(line, "\t")
		switch {
		case sep:
			cur = append(cur, trimmed)
			flush()
		case indented:
			cur = append(cur, trimmed)
		default:
			flush()
			cur = append(cur, trimmed)
		}
	}
	flush()
	return out
}

// rebuildPlan reassembles a plan containing only the kept stanzas (plus all
// non-command parts of the original).
func rebuildPlan(plan *change.Plan, keep []Stanza) *change.Plan {
	trial := *plan
	trial.ID = plan.ID + "-localize"
	trial.Commands = map[string]string{}
	for _, s := range keep {
		trial.Commands[s.Device] += s.Text
	}
	return &trial
}
