package localize

import (
	"strings"
	"testing"

	"hoyan/internal/change"
	"hoyan/internal/core"
	"hoyan/internal/pipeline"
	"hoyan/internal/scenario"
)

func TestSplitStanzas(t *testing.T) {
	block := `
ip prefix-list PL permit 10.0.0.0/24
route-map RM permit 10
 match ip-prefix PL
 set local-preference 300
!
router bgp
 neighbor 1.1.1.1 route-map RM out
!
`
	got := SplitStanzas(block)
	if len(got) != 3 {
		t.Fatalf("stanzas = %d: %q", len(got), got)
	}
	if !strings.HasPrefix(got[0], "ip prefix-list") {
		t.Errorf("stanza 0 = %q", got[0])
	}
	if !strings.Contains(got[1], "set local-preference 300") || !strings.Contains(got[1], "!") {
		t.Errorf("stanza 1 = %q", got[1])
	}
	if !strings.Contains(got[2], "neighbor 1.1.1.1") {
		t.Errorf("stanza 2 = %q", got[2])
	}
	// Re-assembly reproduces the commands (modulo blank lines).
	joined := strings.Join(got, "")
	for _, line := range []string{"match ip-prefix PL", "router bgp"} {
		if !strings.Contains(joined, line) {
			t.Errorf("reassembled block lost %q", line)
		}
	}
}

func TestLocalizeFig10bFindsTheGuiltyStanzas(t *testing.T) {
	// Figure 10(b): the violation is caused by the route-map node whose
	// "ip-prefix" match hits the IPv6-permit-all VSB, bound by the router
	// bgp stanza. The prefix-list declarations themselves are exonerated
	// (removing them still violates, via the undefined-filter VSB).
	sc := scenario.Fig10b()
	sys := pipeline.New(sc.Net, sc.Inputs, sc.Flows, core.Options{})
	res, err := Localize(sys, sc.Plan, sc.Intents, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) == 0 {
		t.Fatalf("the others-unchanged intent is a regression: %+v", res)
	}
	if len(res.Culprits) == 0 {
		t.Fatal("no culprits found")
	}
	joined := ""
	for _, c := range res.Culprits {
		joined += c.Text
	}
	if !strings.Contains(joined, "route-map RM_LP permit 10") {
		t.Errorf("culprits must include the lp-300 node:\n%s", joined)
	}
	if !strings.Contains(joined, "neighbor") {
		t.Errorf("culprits must include the binding stanza:\n%s", joined)
	}
	// The prefix-list declarations are innocent (the bug manifests with or
	// without them).
	if strings.Contains(joined, "ip prefix-list TARGETS") {
		t.Errorf("prefix-list declarations should be exonerated:\n%s", joined)
	}
	t.Logf("localized to %d stanzas in %d trials", len(res.Culprits), res.Trials)
}

func TestLocalizeClassifiesUnachievedGoals(t *testing.T) {
	// Figure 10(a): intent (1) ("R installed on M1 and M2") is violated both
	// before and after the change — a goal the change fails to achieve
	// because of the pre-existing misconfiguration. The localizer must
	// classify it as unachieved rather than blame a command.
	sc := scenario.Fig10a()
	sys := pipeline.New(sc.Net, sc.Inputs, sc.Flows, core.Options{})
	res, err := Localize(sys, sc.Plan, sc.Intents, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unachieved) == 0 {
		t.Fatalf("expected unachieved goals: %+v", res)
	}
	found := false
	for _, u := range res.Unachieved {
		if strings.Contains(u, "1.0.0.0/24") {
			found = true
		}
	}
	if !found {
		t.Errorf("unachieved list should mention the target prefix: %v", res.Unachieved)
	}
}

func TestLocalizeCleanPlanErrors(t *testing.T) {
	sc := scenario.Fig10a()
	// Verify a trivially-satisfiable intent: nothing to localize.
	sys := pipeline.New(sc.Net, sc.Inputs, sc.Flows, core.Options{})
	plan := &change.Plan{ID: "noop", Commands: map[string]string{}}
	if _, err := Localize(sys, plan, sc.Intents[2:3], Options{}); err == nil {
		t.Error("clean plan must return an error")
	}
}

func TestLocalizeTrialBudget(t *testing.T) {
	sc := scenario.Fig10b()
	sys := pipeline.New(sc.Net, sc.Inputs, sc.Flows, core.Options{})
	if _, err := Localize(sys, sc.Plan, sc.Intents, Options{MaxTrials: 1}); err == nil {
		t.Error("budget of 1 must be exhausted")
	}
}

func TestLocalizeMaintenanceRegression(t *testing.T) {
	// The t6 "maintenance touches routing" scenario: the culprit is the
	// network statement hidden inside the OS-upgrade plan.
	var sc *scenario.Scenario
	for _, rs := range scenario.Table6Catalog() {
		if rs.Name == "t6-maintenance-touches-routing" {
			sc = rs.Scenario
		}
	}
	if sc == nil {
		t.Fatal("scenario missing")
	}
	sys := pipeline.New(sc.Net, sc.Inputs, sc.Flows, core.Options{})
	res, err := Localize(sys, sc.Plan, sc.Intents, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Culprits) != 1 || !strings.Contains(res.Culprits[0].Text, "network 203.0.113.0/24") {
		t.Errorf("culprits = %+v", res.Culprits)
	}
}
