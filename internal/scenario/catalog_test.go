package scenario

import (
	"testing"

	"hoyan/internal/change"
)

func TestTable2CatalogCoversAllTypes(t *testing.T) {
	cat := Table2Catalog()
	if len(cat) != len(change.AllTypes) {
		t.Fatalf("catalog size = %d, want %d", len(cat), len(change.AllTypes))
	}
	seen := map[change.Type]bool{}
	for _, sc := range cat {
		seen[sc.Type] = true
		if len(sc.Intents) == 0 {
			t.Errorf("%s: no intents", sc.Name)
		}
	}
	for _, typ := range change.AllTypes {
		if !seen[typ] {
			t.Errorf("type %s missing", typ)
		}
	}
}

func TestTable2CatalogVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog verification is slow")
	}
	for _, sc := range Table2Catalog() {
		sc := sc
		t.Run(string(sc.Type), func(t *testing.T) {
			runScenario(t, sc)
		})
	}
}
