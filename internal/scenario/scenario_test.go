package scenario

import (
	"strings"
	"testing"

	"hoyan/internal/core"
	"hoyan/internal/netmodel"
	"hoyan/internal/pipeline"
)

func runScenario(t *testing.T, sc *Scenario) *pipeline.Outcome {
	t.Helper()
	sys := pipeline.New(sc.Net, sc.Inputs, sc.Flows, core.Options{})
	out, err := sys.Verify(sc.Plan, sc.Intents)
	if sc.WantApplyError {
		if err == nil {
			t.Fatalf("%s: plan must fail to apply", sc.Name)
		}
		return nil
	}
	if err != nil {
		t.Fatalf("%s: %v", sc.Name, err)
	}
	if out.OK != sc.WantOK {
		for _, rep := range out.Reports {
			t.Logf("%s satisfied=%v", rep.Intent, rep.Satisfied)
			for _, v := range rep.Violations {
				t.Logf("  %s", v)
			}
		}
		t.Fatalf("%s: OK = %v, want %v", sc.Name, out.OK, sc.WantOK)
	}
	return out
}

func TestFig10aScenario(t *testing.T) {
	sc := Fig10a()
	out := runScenario(t, sc)

	// Exactly the paper's findings:
	// (1) Only M2 installed route R; M1 did not.
	routeRep := out.Reports[0]
	if routeRep.Satisfied {
		t.Error("route intent must be violated")
	}
	joined := strings.Join(routeRep.Violations, "\n")
	if !strings.Contains(joined, "M1") {
		t.Errorf("violation must name M1: %s", joined)
	}
	m2Best := out.UpdateSnap.RIB.Filter(func(r netmodel.Route) bool {
		return r.Device == "M2" && r.Prefix.String() == "1.0.0.0/24" && r.RouteType == netmodel.RouteBest
	})
	if m2Best.Len() == 0 {
		t.Error("M2 must install route R")
	}

	// (2) The flow takes M1-A-M2-B.
	pathRep := out.Reports[1]
	if pathRep.Satisfied {
		t.Error("path intent must be violated")
	}
	var gotPath string
	for _, fp := range out.UpdateSnap.Paths {
		if fp.Flow.Ingress == "M1" {
			gotPath = strings.Join(fp.Path.Devices(), "-")
		}
	}
	if gotPath != "M1-A-M2-B" {
		t.Errorf("detour path = %s, want M1-A-M2-B", gotPath)
	}

	// (3) Link A-M2 overloaded.
	loadRep := out.Reports[2]
	if loadRep.Satisfied {
		t.Error("load intent must be violated")
	}
	if !strings.Contains(strings.Join(loadRep.Violations, " "), "M2") {
		t.Errorf("overload must involve A-M2: %v", loadRep.Violations)
	}

	// Before the change, the base state carried no traffic on A-M2's detour
	// (flow used the default route via A then exits at A's peer).
	var basePath string
	for _, fp := range out.BaseSnap.Paths {
		if fp.Flow.Ingress == "M1" {
			basePath = strings.Join(fp.Path.Devices(), "-")
		}
	}
	if !strings.HasPrefix(basePath, "M1-A") || strings.Contains(basePath, "B") {
		t.Errorf("base path = %s, want via old WAN A only", basePath)
	}
}

func TestFig10aFixedPlanPasses(t *testing.T) {
	// After fixing M1's policy (adding the missing node 20), the same change
	// verifies cleanly — the "after the command was fixed" ending of §6.1.
	sc := Fig10a()
	sc.Plan.Commands["M1"] = `
route-map RM_FROM_B permit 20
 match ip-prefix PL_R
!
no route-map RM_FROM_B deny 10
`
	sc.WantOK = true
	runScenario(t, sc)
}

func TestFig10bScenario(t *testing.T) {
	sc := Fig10b()
	out := runScenario(t, sc)

	// Intent 1 (targets moved to C) holds.
	if !out.Reports[0].Satisfied {
		t.Errorf("target move must verify: %v", out.Reports[0].Violations)
	}
	// Intent 2 (others unchanged) is violated: ALL IPv6 prefixes moved.
	if out.Reports[1].Satisfied {
		t.Error("others-unchanged must be violated by the VSB")
	}
	// Intent 3: C's ISP2 link overloaded.
	if out.Reports[2].Satisfied {
		t.Error("overload must be detected")
	}
	if !strings.Contains(strings.Join(out.Reports[2].Violations, " "), "ISP2") {
		t.Errorf("overload should be on the C-ISP2 link: %v", out.Reports[2].Violations)
	}
}

func TestFig10bFixedPlanPasses(t *testing.T) {
	// With the correct ipv6 prefix-list command, only the targets move and
	// everything verifies.
	sc := Fig10b()
	sc.Plan.Commands["C"] = `
ipv6 prefix-list TARGETS permit 2400:a::/32
ipv6 prefix-list TARGETS permit 2400:b::/32
route-map RM_LP permit 10
 match ip-prefix TARGETS
 set local-preference 300
!
route-map RM_LP permit 20
!
router bgp
 neighbor 9.1.0.1 route-map RM_LP out
!
`
	// The thin ISP2 link still takes the 2x30M intended shift: raise the
	// allowed utilization to pass (the operator would have also upgraded
	// the link; the point here is the route intents).
	sc.Intents = sc.Intents[:2]
	sc.WantOK = true
	runScenario(t, sc)
}
