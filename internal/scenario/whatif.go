package scenario

import (
	"fmt"

	"hoyan/internal/change"
	"hoyan/internal/config"
	"hoyan/internal/netmodel"
)

// What-if plan constructors. These build pure-delta change plans — up/down
// toggles and input-route changes only, no CLI commands — which the pipeline
// verifies as warm-started incremental forks of the cached base simulation.

// LinkFailurePlan simulates one link going down.
func LinkFailurePlan(id netmodel.LinkID) *change.Plan {
	return &change.Plan{
		ID:          fmt.Sprintf("whatif-link-%s-down", id),
		Type:        change.TopologyAdjust,
		Description: fmt.Sprintf("what-if: link %s fails", id),
		SetLinks:    []change.LinkUpDown{{ID: id, Up: false}},
	}
}

// LinkRestorePlan simulates bringing a downed link back.
func LinkRestorePlan(id netmodel.LinkID) *change.Plan {
	return &change.Plan{
		ID:          fmt.Sprintf("whatif-link-%s-up", id),
		Type:        change.TopologyAdjust,
		Description: fmt.Sprintf("what-if: link %s restored", id),
		SetLinks:    []change.LinkUpDown{{ID: id, Up: true}},
	}
}

// NodeMaintenancePlan simulates taking one router out of service.
func NodeMaintenancePlan(name string) *change.Plan {
	return &change.Plan{
		ID:          fmt.Sprintf("whatif-node-%s-down", name),
		Type:        change.TopologyAdjust,
		Description: fmt.Sprintf("what-if: router %s under maintenance", name),
		SetNodes:    []change.NodeUpDown{{Name: name, Up: false}},
	}
}

// PrefixWithdrawalPlan simulates reclaiming input routes.
func PrefixWithdrawalPlan(routes ...netmodel.Route) *change.Plan {
	return &change.Plan{
		ID:          "whatif-prefix-withdrawal",
		Type:        change.PrefixReclamation,
		Description: "what-if: input routes withdrawn",
		DropInputs:  routes,
	}
}

// LinkFailureSweep returns one single-link-failure plan per up link of the
// network — the classic exhaustive what-if sweep, every plan delta-only.
func LinkFailureSweep(net *config.Network) []*change.Plan {
	var plans []*change.Plan
	for _, l := range net.Topo.Links() {
		if l.Up {
			plans = append(plans, LinkFailurePlan(l.ID()))
		}
	}
	return plans
}
