package scenario

import (
	"testing"

	"hoyan/internal/core"
	"hoyan/internal/pipeline"
)

func TestTable6CatalogAllRisksDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("full risk campaign is slow")
	}
	cat := Table6Catalog()
	if len(cat) != 16 {
		t.Fatalf("catalog size = %d, want 16", len(cat))
	}
	counts := map[RootCause]int{}
	for _, rs := range cat {
		rs := rs
		counts[rs.Cause]++
		t.Run(rs.Name, func(t *testing.T) {
			sys := pipeline.New(rs.Net, rs.Inputs, rs.Flows, core.Options{})
			out, err := sys.Verify(rs.Plan, rs.Intents)
			if rs.WantApplyError {
				if err == nil {
					t.Fatal("plan must fail to apply")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if out.OK {
				t.Fatal("risk not detected: all intents verified")
			}
		})
	}
	// The distribution mirrors Table 6's ordering.
	if !(counts[CauseIncorrectCommands] > counts[CauseDesignFlaw] &&
		counts[CauseDesignFlaw] > counts[CauseExistingMisconfig] &&
		counts[CauseExistingMisconfig] > counts[CauseTopologyIssue]) {
		t.Errorf("root cause distribution off: %v", counts)
	}
}
