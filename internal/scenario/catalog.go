package scenario

import (
	"fmt"
	"net/netip"

	"hoyan/internal/change"
	"hoyan/internal/gen"
	"hoyan/internal/intent"
	"hoyan/internal/netmodel"
)

// Table2Catalog builds one well-formed change per Table 2 change type on a
// generated WAN, with the example intents of the table. Every scenario is a
// *correct* change: all intents verify, demonstrating coverage of all 12
// change types.
func Table2Catalog() []*Scenario {
	var out []*Scenario
	for _, t := range change.AllTypes {
		out = append(out, table2Scenario(t))
	}
	return out
}

// table2Scenario builds the scenario for one change type. Each scenario gets
// its own generated network so plans cannot interfere.
func table2Scenario(t change.Type) *Scenario {
	g := gen.Generate(gen.WAN(1))
	sc := &Scenario{
		Name:   "table2-" + string(t),
		Type:   t,
		Net:    g.Net,
		Inputs: g.Inputs,
		Flows:  g.Flows,
		WantOK: true,
	}
	rr := "rr-0-0"         // vendor alpha
	dc := "dc-0-1"         // vendor alpha (dc-0-0 is beta)
	border := "border-0-0" // vendor beta; commands for it use the beta dialect
	borderAlpha := "border-0-1"
	rrLoopback := g.Net.Devices[rr].Loopback

	switch t {
	case change.OSUpgrade, change.OSPatch:
		// Maintenance reboot modelled as a no-op configuration touch; the
		// intent is the canonical "all routes remain unchanged (including
		// the prefix and attributes of a route)".
		sc.Plan = &change.Plan{
			ID: string(t), Type: t,
			Description: "software maintenance on " + dc + "; routing must be untouched",
			Commands:    map[string]string{dc: "isis enable\n"},
		}
		sc.Intents = []intent.Intent{intent.RouteIntent{Spec: "PRE = POST"}}

	case change.RouteAttrModify:
		// Routes carrying community 65000:0 exported by dc-0-0 get 65000:77
		// added; others remain unchanged.
		sc.Plan = &change.Plan{
			ID: string(t), Type: t,
			Description: "retag region-0 routes with 65000:77 on " + dc,
			Commands: map[string]string{dc: fmt.Sprintf(`
ip community-list CL_R0 permit 65000:0
route-map RM_RETAG permit 10
 match community CL_R0
 set community add 65000:77
!
route-map RM_RETAG permit 20
!
router bgp
 neighbor %s route-map RM_RETAG out
!
`, rrLoopback)},
		}
		sc.Intents = []intent.Intent{
			// Every route rr-0-0 learned from dc-0-0 with the old community
			// now carries the new one.
			intent.RouteIntent{Spec: fmt.Sprintf(
				"forall device in {%s}: POST||peer = %s||(communities has 65000:0)||(not communities has 65000:77) |> count() = 0", rr, dc)},
			// And routes from the *other* DC gateway are untouched.
			intent.RouteIntent{Spec: fmt.Sprintf(
				"device = %s and peer = dc-0-0 => PRE = POST", rr)},
		}

	case change.StaticRouteModify:
		nh := g.Net.Devices["core-0-0"].Loopback
		sc.Plan = &change.Plan{
			ID: string(t), Type: t,
			Description: "add a static route on " + borderAlpha,
			Commands:    map[string]string{borderAlpha: fmt.Sprintf("ip route 192.0.2.0/24 %s\n", nh)},
		}
		sc.Intents = []intent.Intent{
			intent.ReachIntent{Prefix: netip.MustParsePrefix("192.0.2.0/24"), Devices: []string{borderAlpha}, Want: true},
		}

	case change.PBRModify:
		// Steer flows for one DC prefix entering border-0-0 through core-0-1
		// explicitly.
		target := netip.MustParsePrefix("10.0.0.0/24")
		core1Addr := linkAddrOf(sc, border, "core-0-1")
		sc.Flows = append(sc.Flows, netmodel.Flow{
			Ingress: border, Src: netip.MustParseAddr("198.18.0.1"),
			Dst: netip.MustParseAddr("10.0.0.9"), SrcPort: 1111, DstPort: 443,
			Proto: netmodel.ProtoTCP, Volume: 1e6,
		})
		sc.Plan = &change.Plan{
			ID: string(t), Type: t,
			Description: "PBR: steer 10.0.0.0/24 entering " + border + " via core-0-1",
			Commands: map[string]string{border: fmt.Sprintf(`
policy-based-route STEER dst %s next-hop %s
interface to-isp-0-0
 pbr STEER
#
`, target, core1Addr)},
		}
		sc.Intents = []intent.Intent{
			intent.PathIntent{
				Select:    intent.FlowSelector{Ingress: border, DstWithin: target},
				Traverse:  []string{border, "core-0-1"},
				Delivered: true,
			},
		}

	case change.ACLModify:
		sc.Flows = append(sc.Flows, netmodel.Flow{
			Ingress: dc, Src: netip.MustParseAddr("10.0.0.7"),
			Dst: netip.MustParseAddr("20.0.0.5"), SrcPort: 2222, DstPort: 8080,
			Proto: netmodel.ProtoTCP, Volume: 1e6,
		})
		// Block TCP/8080 where the DC's uplinks enter the cores; the command
		// block follows each core's own vendor dialect.
		for _, l := range g.Net.Topo.LinksOf(dc) {
			other := l.A
			iface := l.AIface
			if l.A == dc {
				other = l.B
				iface = l.BIface
			}
			var cmds string
			if g.Net.Devices[other].Vendor == "beta" {
				cmds = fmt.Sprintf(`
acl BLOCK8080 rule deny proto tcp dport 8080-8080
acl BLOCK8080 rule permit
interface %s
 traffic-filter inbound acl BLOCK8080
#
`, iface)
			} else {
				cmds = fmt.Sprintf(`
ip access-list BLOCK8080 deny proto tcp dport 8080-8080
ip access-list BLOCK8080 permit
interface %s
 acl-in BLOCK8080
!
`, iface)
			}
			sc.Plan = addCommands(sc.Plan, t, other, cmds)
		}
		sc.Plan.Description = "block TCP/8080 from " + dc + " at its uplinks"
		sc.Intents = []intent.Intent{
			intent.PathIntent{
				Select:  intent.FlowSelector{Ingress: dc, DstWithin: netip.MustParsePrefix("20.0.0.0/24")},
				Blocked: true,
			},
		}

	case change.AddLinks:
		a, b := "core-0-0", "core-1-0"
		base := netip.MustParseAddr("172.31.0.0")
		sc.Plan = &change.Plan{
			ID: string(t), Type: t,
			Description: "add a second inter-region link " + a + "—" + b,
			AddLinks: []netmodel.Link{{
				A: a, B: b, AIface: "newlink-to-" + b, BIface: "newlink-to-" + a,
				ANet: netip.PrefixFrom(base, 30), BNet: netip.PrefixFrom(base, 30),
				AAddr: base.Next(), BAddr: base.Next().Next(),
				CostAB: 100, CostBA: 100, Bandwidth: 1e10,
			}},
		}
		sc.Intents = []intent.Intent{
			// Reachability is preserved and nothing is overloaded.
			intent.ReachIntent{Prefix: netip.MustParsePrefix("10.0.0.0/24"), Devices: []string{"rr-1-0"}, Want: true},
			intent.RouteIntent{Spec: "POST |> count() >= PRE |> count()"},
			intent.LoadIntent{MaxUtilization: 0.95},
		}

	case change.AddRouters:
		newName := "dc-0-9"
		lo := netip.MustParseAddr("100.64.4.99")
		core := "core-0-0"
		base := netip.MustParseAddr("172.31.1.0")
		newCfg := fmt.Sprintf(`hostname %s
vendor alpha
asn 65000
router-id %s
loopback %s
isis enable
!
router bgp
 max-paths 4
 neighbor %s remote-as 65000
 neighbor %s update-source
 neighbor %s next-hop-self
`, newName, lo, lo, rrLoopback, rrLoopback, rrLoopback)
		sc.Plan = &change.Plan{
			ID: string(t), Type: t,
			Description: "add new DC gateway " + newName,
			NewConfigs:  map[string]string{newName: newCfg},
			AddNodes:    []change.AddNode{{Name: newName, Loopback: lo}},
			AddLinks: []netmodel.Link{{
				A: core, B: newName, AIface: "to-" + newName, BIface: "to-" + core,
				ANet: netip.PrefixFrom(base, 30), BNet: netip.PrefixFrom(base, 30),
				AAddr: base.Next(), BAddr: base.Next().Next(),
				CostAB: 10, CostBA: 10, Bandwidth: 1e10,
			}},
			Commands: map[string]string{rr: fmt.Sprintf(`
router bgp
 neighbor %s remote-as 65000
 neighbor %s update-source
 neighbor %s route-reflector-client
!
`, lo, lo, lo)},
		}
		sc.Intents = []intent.Intent{
			// The new router learns the same prefixes the peer DC gateway in
			// its group knows.
			intent.RouteIntent{Spec: fmt.Sprintf(
				"forall prefix in {10.1.0.0/24, 20.0.0.0/24}: routeType = BEST => POST||device = %s |> count() >= 1", newName)},
		}

	case change.TopologyAdjust:
		// Take one of dc-0-0's two uplinks down for maintenance; flows
		// must still be delivered over the remaining one.
		links := upLinksOf(sc, dc)
		sc.Plan = &change.Plan{
			ID: string(t), Type: t,
			Description: "maintenance: disable one uplink of " + dc,
			SetLinks:    []change.LinkUpDown{{ID: links[0], Up: false}},
		}
		sc.Intents = []intent.Intent{
			intent.ReachIntent{Prefix: netip.MustParsePrefix("10.0.0.0/24"), Devices: []string{rr}, Want: true},
			intent.LoadIntent{MaxUtilization: 0.95},
		}

	case change.NewPrefix:
		p := netip.MustParsePrefix("10.99.0.0/24")
		sc.Plan = &change.Plan{
			ID: string(t), Type: t,
			Description: "announce new prefix " + p.String() + " at " + dc,
			NewInputs: []netmodel.Route{{
				Device: dc, VRF: netmodel.DefaultVRF, Prefix: p,
				Protocol: netmodel.ProtoBGP, NextHop: g.Net.Devices[dc].Loopback,
				LocalPref: 100, Source: dc,
			}},
		}
		sc.Intents = []intent.Intent{
			intent.ReachIntent{Prefix: p, Devices: []string{rr, border, "rr-1-0"}, Want: true},
		}

	case change.PrefixReclamation:
		victim := sc.Inputs[0]
		sc.Plan = &change.Plan{
			ID: string(t), Type: t,
			Description: "reclaim prefix " + victim.Prefix.String(),
			DropInputs:  []netmodel.Route{victim},
		}
		sc.Intents = []intent.Intent{
			intent.ReachIntent{Prefix: victim.Prefix, Want: false},
		}

	case change.TrafficSteering:
		// Prefer ISP routes learned at border-0-0 region-wide by raising
		// their local preference.
		sc.Plan = &change.Plan{
			ID: string(t), Type: t,
			Description: "prefer ISP exit at " + border,
			Commands: map[string]string{border: `
route-policy RM_ISP_IN permit node 15
 apply local-preference 150
#
undo route-policy RM_ISP_IN permit node 20
`},
		}
		sc.Intents = []intent.Intent{
			// ISP prefixes on the region's RR prefer border-0-0 now.
			intent.RouteIntent{Spec: fmt.Sprintf(
				"forall device in {%s}: prefix = 20.0.0.0/24 and routeType = BEST => POST |> distVals(localPref) = {150}", rr)},
			intent.LoadIntent{MaxUtilization: 0.95},
		}
	}
	sc.Description = sc.Plan.Description
	return sc
}

func addCommands(p *change.Plan, t change.Type, device, cmds string) *change.Plan {
	if p == nil {
		p = &change.Plan{ID: string(t), Type: t, Commands: map[string]string{}}
	}
	if p.Commands == nil {
		p.Commands = map[string]string{}
	}
	p.Commands[device] += cmds
	return p
}

// linkAddrOf returns the address of `other`'s side of the link between dev
// and other.
func linkAddrOf(sc *Scenario, dev, other string) netip.Addr {
	l := sc.Net.Topo.FindLink(dev, other)
	if l == nil {
		panic("scenario: no link " + dev + "--" + other)
	}
	if l.A == other {
		return l.AAddr
	}
	return l.BAddr
}

// upLinksOf returns the IDs of the device's up links.
func upLinksOf(sc *Scenario, dev string) []netmodel.LinkID {
	var out []netmodel.LinkID
	for _, l := range sc.Net.Topo.LinksOf(dev) {
		if l.Up {
			out = append(out, l.ID())
		}
	}
	return out
}
