// Package scenario builds the paper's concrete case studies and the Table 2
// change-type catalog as runnable verification scenarios. The integration
// tests, the examples, and the hoyan-exp experiment driver all share these.
package scenario

import (
	"fmt"
	"net/netip"

	"hoyan/internal/change"
	"hoyan/internal/config"
	"hoyan/internal/intent"
	"hoyan/internal/netmodel"
)

// Scenario is one ready-to-verify change situation.
type Scenario struct {
	Name        string
	Description string
	Type        change.Type

	Net    *config.Network
	Inputs []netmodel.Route
	Flows  []netmodel.Flow

	Plan    *change.Plan
	Intents []intent.Intent

	// WantOK is the expected verification outcome: false means Hoyan must
	// detect a risk.
	WantOK bool
	// WantApplyError marks plans that must already fail to apply (e.g.
	// router-name typos).
	WantApplyError bool
}

// scenarioBuilder assembles small purpose-built networks.
type scenarioBuilder struct {
	net      *config.Network
	nextLink int
}

func newScenarioBuilder() *scenarioBuilder {
	return &scenarioBuilder{net: config.NewNetwork()}
}

func (b *scenarioBuilder) device(name, vendor string, asn netmodel.ASN, lo string) *config.Device {
	d := config.NewDevice(name, vendor)
	d.ASN = asn
	d.Loopback = netip.MustParseAddr(lo)
	d.RouterID = d.Loopback
	d.MaxPaths = 4
	b.net.Devices[name] = d
	b.net.Topo.AddNode(netmodel.Node{Name: name, Loopback: d.Loopback})
	return d
}

func (b *scenarioBuilder) link(a, bdev string, cost uint32, bandwidth float64) *netmodel.Link {
	b.nextLink++
	v := b.nextLink * 4
	base := netip.AddrFrom4([4]byte{172, 24, byte(v >> 8), byte(v)})
	aAddr := base.Next()
	bAddr := aAddr.Next()
	aIf, bIf := "to-"+bdev, "to-"+a
	b.net.Devices[a].Interfaces[aIf] = &config.Interface{Name: aIf, Addr: netip.PrefixFrom(aAddr, 30), ISISCost: cost, Bandwidth: bandwidth}
	b.net.Devices[bdev].Interfaces[bIf] = &config.Interface{Name: bIf, Addr: netip.PrefixFrom(bAddr, 30), ISISCost: cost, Bandwidth: bandwidth}
	return b.net.Topo.AddLink(netmodel.Link{
		A: a, B: bdev, AIface: aIf, BIface: bIf,
		ANet: netip.PrefixFrom(base, 30), BNet: netip.PrefixFrom(base, 30),
		AAddr: aAddr, BAddr: bAddr,
		CostAB: cost, CostBA: cost, Bandwidth: bandwidth,
	})
}

func (b *scenarioBuilder) ebgp(a, bdev string, aImport, aExport string) {
	l := b.net.Topo.FindLink(a, bdev)
	aAddr, bAddr := l.AAddr, l.BAddr
	if l.A != a {
		aAddr, bAddr = bAddr, aAddr
	}
	da, db := b.net.Devices[a], b.net.Devices[bdev]
	da.Neighbors = append(da.Neighbors, &config.Neighbor{
		Addr: bAddr, RemoteAS: db.ASN, VRF: netmodel.DefaultVRF,
		ImportPolicy: aImport, ExportPolicy: aExport,
	})
	db.Neighbors = append(db.Neighbors, &config.Neighbor{
		Addr: aAddr, RemoteAS: da.ASN, VRF: netmodel.DefaultVRF,
	})
}

func (b *scenarioBuilder) ibgp(a, bdev string, aIsRRForB bool) {
	da, db := b.net.Devices[a], b.net.Devices[bdev]
	na := &config.Neighbor{Addr: db.Loopback, RemoteAS: db.ASN, VRF: netmodel.DefaultVRF, UpdateSource: true, RRClient: aIsRRForB}
	nb := &config.Neighbor{Addr: da.Loopback, RemoteAS: da.ASN, VRF: netmodel.DefaultVRF, UpdateSource: true, NextHopSelf: true}
	da.Neighbors = append(da.Neighbors, na)
	db.Neighbors = append(db.Neighbors, nb)
}

// Fig10a reproduces the "shifting traffic to new WAN" risk of Figure 10(a):
// M1's pre-installed ingress policy is missing node 20, so after deleting
// node 10 M1 still denies route R; traffic from M1 detours M1-A-M2-B and
// overloads link A-M2.
func Fig10a() *Scenario {
	b := newScenarioBuilder()
	// A: old WAN; B: new WAN; M1/M2: DC-side routers in one AS.
	b.device("A", "alpha", 65100, "9.0.0.1")
	b.device("B", "alpha", 65200, "9.0.0.2")
	b.device("M1", "alpha", 65000, "9.0.0.3")
	b.device("M2", "alpha", 65000, "9.0.0.4")

	b.link("M1", "A", 10, 1e9)
	b.link("M2", "A", 10, 50e6) // thin link: overloads on detour
	b.link("M1", "B", 10, 1e9)
	b.link("M2", "B", 10, 1e9)

	// Ingress policies on M1/M2 for the B sessions. The intended policy has
	// node 10 (deny all) and node 20 (permit 1.0.0.0/24); M1 *misses* node
	// 20 — the latent misconfiguration.
	m1, m2 := b.net.Devices["M1"], b.net.Devices["M2"]
	mustCommands(m1, `
ip prefix-list PL_R permit 1.0.0.0/24
route-map RM_FROM_B deny 10
!
`)
	mustCommands(m2, `
ip prefix-list PL_R permit 1.0.0.0/24
route-map RM_FROM_B deny 10
!
route-map RM_FROM_B permit 20
 match ip-prefix PL_R
!
`)
	b.ebgp("M1", "A", "", "")
	b.ebgp("M2", "A", "", "")
	b.ebgp("M1", "B", "RM_FROM_B", "")
	b.ebgp("M2", "B", "RM_FROM_B", "")

	// Input routes: B advertises R = 1.0.0.0/24 (new WAN path); A has the
	// pre-configured default 1.0.0.0/8 toward the old WAN.
	ext := func(dev, iface, addr string) netip.Addr {
		a := netip.MustParseAddr(addr)
		b.net.Devices[dev].Interfaces[iface] = &config.Interface{Name: iface, Addr: netip.PrefixFrom(a, 24)}
		return a.Next()
	}
	nhB := ext("B", "ext", "198.51.100.1")
	nhA := ext("A", "ext", "198.51.101.1")
	inputs := []netmodel.Route{
		{Device: "B", VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix("1.0.0.0/24"),
			Protocol: netmodel.ProtoBGP, NextHop: nhB, ASPath: netmodel.ASPath{Seq: []netmodel.ASN{65201}}, Source: "B"},
		{Device: "A", VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix("1.0.0.0/8"),
			Protocol: netmodel.ProtoBGP, NextHop: nhA, ASPath: netmodel.ASPath{Seq: []netmodel.ASN{65101}}, Source: "A"},
	}

	// Traffic: 80 Mbps from the DC behind M1 toward 1.0.0.0/24.
	flows := []netmodel.Flow{{
		Ingress: "M1",
		Src:     netip.MustParseAddr("203.0.113.10"),
		Dst:     netip.MustParseAddr("1.0.0.5"),
		SrcPort: 40000, DstPort: 443, Proto: netmodel.ProtoTCP,
		Volume: 80e6,
	}}

	// The change: delete node 10 on both M1 and M2.
	plan := &change.Plan{
		ID:   "shift-to-new-wan",
		Type: change.TrafficSteering,
		Description: "Shift traffic for 1.0.0.0/24 from the old WAN (A) to the new WAN (B) " +
			"by removing the deny-all node from the pre-installed ingress policies.",
		Commands: map[string]string{
			"M1": "no route-map RM_FROM_B deny 10\n",
			"M2": "no route-map RM_FROM_B deny 10\n",
		},
	}

	intents := []intent.Intent{
		// (1) Route R installed as best on both M1 and M2.
		intent.RouteIntent{Spec: "forall device in {M1, M2}: prefix = 1.0.0.0/24 and routeType = BEST => POST |> count() >= 1"},
		// (2) Traffic shifts to B directly.
		intent.PathIntent{
			Select:    intent.FlowSelector{Ingress: "M1", DstWithin: netip.MustParsePrefix("1.0.0.0/24")},
			Traverse:  []string{"M1", "B"},
			Avoid:     []string{"A"},
			Delivered: true,
		},
		// (3) No overloaded links.
		intent.LoadIntent{MaxUtilization: 0.8},
	}

	return &Scenario{
		Name:        "fig10a-shift-to-new-wan",
		Description: "Figure 10(a): latent missing policy node on M1 causes a detour and overload",
		Type:        change.TrafficSteering,
		Net:         b.net, Inputs: inputs, Flows: flows,
		Plan: plan, Intents: intents,
		WantOK: false,
	}
}

// Fig10b reproduces the "changing ISP exits" risk of Figure 10(b): the
// operator uses an IPv4 "ip prefix-list" command for IPv6 prefixes, and the
// vendor's filter permits every IPv6 prefix by default, so ALL IPv6 traffic
// shifts to C and overloads the C-ISP2 link.
func Fig10b() *Scenario {
	b := newScenarioBuilder()
	b.device("RR", "alpha", 65000, "9.1.0.1")
	b.device("R1", "alpha", 65000, "9.1.0.2")
	b.device("C", "alpha", 65000, "9.1.0.3") // border to ISP2
	b.device("D", "alpha", 65000, "9.1.0.4") // border to ISP1
	b.device("ISP1", "alpha", 64701, "9.1.0.5")
	b.device("ISP2", "alpha", 64702, "9.1.0.6")

	b.link("RR", "R1", 10, 1e9)
	b.link("RR", "C", 10, 1e9)
	b.link("RR", "D", 10, 1e9)
	b.link("R1", "C", 20, 1e9)
	b.link("R1", "D", 20, 1e9)
	b.link("C", "ISP2", 10, 40e6) // thin exit link
	b.link("D", "ISP1", 10, 1e9)

	b.ibgp("RR", "R1", true)
	b.ibgp("RR", "C", true)
	b.ibgp("RR", "D", true)
	b.ebgp("C", "ISP2", "", "")
	b.ebgp("D", "ISP1", "", "")

	// ISP1 and ISP2 both advertise the same IPv6 prefixes; D's routes win
	// before the change (shorter AS path via ISP1).
	prefixes := []string{
		"2400:a::/32", "2400:b::/32", // targets
		"2400:c::/32", "2400:d::/32", "2400:e::/32", // others
	}
	extAddr := func(dev, addr string) netip.Addr {
		a := netip.MustParseAddr(addr)
		b.net.Devices[dev].Interfaces["ext"] = &config.Interface{Name: "ext", Addr: netip.PrefixFrom(a, 120)}
		return a.Next()
	}
	nh1 := extAddr("ISP1", "2001:db8:f1::1")
	nh2 := extAddr("ISP2", "2001:db8:f2::1")
	var inputs []netmodel.Route
	for _, p := range prefixes {
		inputs = append(inputs,
			netmodel.Route{Device: "ISP1", VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix(p),
				Protocol: netmodel.ProtoBGP, NextHop: nh1, ASPath: netmodel.ASPath{Seq: []netmodel.ASN{65301}}, Source: "ISP1"},
			netmodel.Route{Device: "ISP2", VRF: netmodel.DefaultVRF, Prefix: netip.MustParsePrefix(p),
				Protocol: netmodel.ProtoBGP, NextHop: nh2, ASPath: netmodel.ASPath{Seq: []netmodel.ASN{65302, 65303}}, Source: "ISP2"},
		)
	}

	// 30 Mbps to each prefix, entering at R1 (5 prefixes x 30M = 150M; the
	// C-ISP2 link is 40M, so even the intended shift of 2x30M would near the
	// limit, and the accidental 5x30M clearly overloads it).
	var flows []netmodel.Flow
	for i, p := range prefixes {
		dst := netip.MustParsePrefix(p).Addr().Next()
		flows = append(flows, netmodel.Flow{
			Ingress: "R1",
			Src:     netip.MustParseAddr("2001:db8:9::1"),
			Dst:     dst,
			SrcPort: uint16(40000 + i), DstPort: 443, Proto: netmodel.ProtoTCP,
			Volume: 30e6,
		})
	}

	// The change: on C, raise local preference for the target prefixes
	// before advertising to the RR — but using the IPv4 "ip prefix-list"
	// command for IPv6 prefixes (the Figure 10(b) typo).
	plan := &change.Plan{
		ID:   "isp-exit-change",
		Type: change.TrafficSteering,
		Description: "Move the ISP exit of two IPv6 prefixes from ISP1 (via D) to ISP2 (via C) " +
			"by raising their local preference on C.",
		Commands: map[string]string{
			"C": `
ip prefix-list TARGETS permit 2400:a::/32
ip prefix-list TARGETS permit 2400:b::/32
route-map RM_LP permit 10
 match ip-prefix TARGETS
 set local-preference 300
!
route-map RM_LP permit 20
!
router bgp
 neighbor 9.1.0.1 route-map RM_LP out
!
`,
		},
	}

	intents := []intent.Intent{
		// (1) Targets' next hop moves to C (C's loopback after reflection).
		intent.RouteIntent{Spec: "forall device in {R1}: forall prefix in {2400:a::/32, 2400:b::/32}: routeType = BEST => POST |> distVals(nexthop) = {9.1.0.3}"},
		// (2) Other prefixes remain unchanged.
		intent.RouteIntent{Spec: "forall device in {R1}: forall prefix in {2400:c::/32, 2400:d::/32, 2400:e::/32}: routeType = BEST => PRE |> distVals(nexthop) = POST |> distVals(nexthop)"},
		// (3) No overloaded links.
		intent.LoadIntent{MaxUtilization: 0.9},
	}

	return &Scenario{
		Name:        "fig10b-isp-exit",
		Description: "Figure 10(b): ip-prefix vs ipv6-prefix VSB moves ALL IPv6 prefixes to C",
		Type:        change.TrafficSteering,
		Net:         b.net, Inputs: inputs, Flows: flows,
		Plan: plan, Intents: intents,
		WantOK: false,
	}
}

func mustCommands(d *config.Device, commands string) {
	if err := config.ApplyCommands(d, commands); err != nil {
		panic(fmt.Sprintf("scenario: %v", err))
	}
}
