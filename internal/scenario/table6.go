package scenario

import (
	"fmt"
	"net/netip"
	"strings"

	"hoyan/internal/change"
	"hoyan/internal/config"
	"hoyan/internal/intent"
	"hoyan/internal/netmodel"
)

// RootCause classifies a detected change risk per Table 6.
type RootCause string

// Table 6 root-cause classes.
const (
	CauseIncorrectCommands RootCause = "incorrect-commands"
	CauseDesignFlaw        RootCause = "change-plan-design-flaw"
	CauseExistingMisconfig RootCause = "existing-misconfiguration"
	CauseTopologyIssue     RootCause = "topology-issue"
	CauseOther             RootCause = "others"
)

// RiskScenario is one deliberately risky change plan Hoyan must catch.
type RiskScenario struct {
	*Scenario
	Cause RootCause
}

// Table6Catalog builds the Table 6 campaign: risky change plans whose
// distribution over root causes mirrors the paper's (incorrect commands >
// design flaws > existing misconfiguration > topology issues > others).
// Every scenario has WantOK=false or WantApplyError=true: Hoyan must flag
// each one.
func Table6Catalog() []*RiskScenario {
	var out []*RiskScenario
	add := func(c RootCause, sc *Scenario) {
		sc.WantOK = false
		out = append(out, &RiskScenario{Scenario: sc, Cause: c})
	}

	// ---- incorrect commands (6 scenarios) ----

	// (1) Typo in the router name: the plan cannot even be applied.
	sc := table2Scenario(change.StaticRouteModify)
	sc.Name = "t6-router-name-typo"
	sc.Plan.Commands = map[string]string{"borde-0-1": sc.Plan.Commands["border-0-1"]}
	sc.WantApplyError = true
	add(CauseIncorrectCommands, sc)

	// (2) Alpha command block sent to a beta router: rejected like a real
	// CLI would.
	sc = table2Scenario(change.StaticRouteModify)
	sc.Name = "t6-wrong-vendor-syntax"
	sc.Plan.Commands = map[string]string{"border-0-0": sc.Plan.Commands["border-0-1"]}
	delete(sc.Plan.Commands, "border-0-1")
	sc.WantApplyError = true
	add(CauseIncorrectCommands, sc)

	// (3) Wrong prefix mask: the static route covers /25 instead of /24, so
	// the reachability intent for /24 fails.
	sc = table2Scenario(change.StaticRouteModify)
	sc.Name = "t6-wrong-prefix-mask"
	nh := sc.Net.Devices["core-0-0"].Loopback
	sc.Plan.Commands["border-0-1"] = fmt.Sprintf("ip route 192.0.2.0/25 %s\n", nh)
	add(CauseIncorrectCommands, sc)

	// (4) Wrong community value: retag uses 65000:7 instead of 65000:77.
	sc = table2Scenario(change.RouteAttrModify)
	sc.Name = "t6-wrong-community"
	cmds := sc.Plan.Commands["dc-0-1"]
	sc.Plan.Commands["dc-0-1"] = replaceAll(cmds, "65000:77", "65000:7")
	add(CauseIncorrectCommands, sc)

	// (5) Typo in a filter name: the plan adds a deny node intended to stop
	// a single prefix from being retagged, but references PL_EXCLUDO
	// (typo) instead of PL_EXCLUDE. On this alpha vendor an undefined
	// filter matches everything, so the deny node silently drops every
	// advertisement from dc-0-1 — referencing undefined definitions
	// "would trigger unexpected vendor-specific behavior" (§6.1).
	sc = table2Scenario(change.RouteAttrModify)
	sc.Name = "t6-filter-name-typo"
	sc.Plan.Commands["dc-0-1"] = `
ip prefix-list PL_EXCLUDE permit 10.0.64.0/24
route-map RM_RETAG deny 5
 match ip-prefix PL_EXCLUDO
!
route-map RM_RETAG permit 20
!
router bgp
 neighbor ` + rrLoopbackOf(sc) + ` route-map RM_RETAG out
!
`
	sc.Intents = append(sc.Intents, intent.RouteIntent{
		Spec: "forall device in {rr-0-0}: POST||peer = dc-0-1 |> count() >= 1",
	})
	add(CauseIncorrectCommands, sc)

	// (6) The ip-prefix/ipv6-prefix confusion (Figure 10(b)).
	add(CauseIncorrectCommands, Fig10b())

	// ---- change plan design flaws (5 scenarios) ----

	// (7) Local preference set below the competing route's: the steering
	// has no effect.
	sc = table2Scenario(change.TrafficSteering)
	sc.Name = "t6-lp-too-low"
	sc.Plan.Commands["border-0-0"] = replaceAll(sc.Plan.Commands["border-0-0"], "local-preference 150", "local-preference 50")
	add(CauseDesignFlaw, sc)

	// (8) Wrong IS-IS cost on a new link: it is supposed to be preferred
	// (low cost) but the plan sets it higher than existing paths, so
	// flows never use it.
	sc = table2Scenario(change.AddLinks)
	sc.Name = "t6-isis-cost-flaw"
	sc.Plan.AddLinks[0].CostAB = 10
	sc.Plan.AddLinks[0].CostBA = 10
	// Intent: the new low-cost link becomes the inter-region path for
	// region-0 to region-1 traffic — add a probe flow and expect it on the
	// new link. Design flaw injected: cost accidentally set high instead.
	sc.Plan.AddLinks[0].CostAB = 500
	sc.Plan.AddLinks[0].CostBA = 500
	probe := netmodel.Flow{
		Ingress: "dc-0-1", Src: netip.MustParseAddr("10.0.64.9"),
		Dst: netip.MustParseAddr("10.1.0.9"), SrcPort: 7777, DstPort: 443,
		Proto: netmodel.ProtoTCP, Volume: 1e6,
	}
	sc.Flows = append(sc.Flows, probe)
	sc.Intents = append(sc.Intents, intent.PathIntent{
		Select:     intent.FlowSelector{Ingress: "dc-0-1", DstWithin: netip.MustParsePrefix("10.1.0.0/24")},
		AvoidLinks: nil,
		Traverse:   []string{"core-0-0", "core-1-0"},
		Delivered:  true,
	})
	add(CauseDesignFlaw, sc)

	// (9) Forgotten second router: the plan steers at border-0-0 but the
	// intent requires region-wide preference including prefixes learned at
	// other borders — incomplete design.
	sc = table2Scenario(change.TrafficSteering)
	sc.Name = "t6-partial-steering"
	sc.Intents = []intent.Intent{intent.RouteIntent{
		// ALL ISP-learned prefixes visible on rr-0-0 should now carry
		// lp 150 — but the plan only touched region 0's border, so the
		// other regions' ISP routes keep lp 80.
		Spec: "forall device in {rr-0-0}: (communities contains 64600:0 or communities contains 64600:1 or communities contains 64600:2) and routeType = BEST => POST |> distVals(localPref) = {150}",
	}}
	add(CauseDesignFlaw, sc)

	// (10) Reclaiming a prefix that still carries traffic: flows to it are
	// blackholed.
	sc = table2Scenario(change.PrefixReclamation)
	sc.Name = "t6-reclaim-live-prefix"
	// Reclaim an ISP prefix: unlike DC prefixes it has no covering
	// aggregate, so traffic to it is genuinely blackholed.
	var victim netmodel.Route
	for _, in := range sc.Inputs {
		if in.Device == "isp-0-0" {
			victim = in
			break
		}
	}
	sc.Plan.DropInputs = []netmodel.Route{victim}
	sc.Intents = []intent.Intent{intent.ReachIntent{Prefix: victim.Prefix, Want: false}}
	sc.Flows = append(sc.Flows, netmodel.Flow{
		Ingress: "border-1-0", Src: netip.MustParseAddr("198.18.5.1"),
		Dst: victim.Prefix.Addr().Next(), SrcPort: 5555, DstPort: 443,
		Proto: netmodel.ProtoTCP, Volume: 1e6,
	})
	sc.Intents = append(sc.Intents, intent.PathIntent{
		Select:    intent.FlowSelector{Ingress: "border-1-0", DstWithin: victim.Prefix},
		Delivered: true,
	})
	add(CauseDesignFlaw, sc)

	// (11) OS maintenance performed with a config change that does alter
	// routing: the "all routes unchanged" intent catches it.
	sc = table2Scenario(change.OSUpgrade)
	sc.Name = "t6-maintenance-touches-routing"
	sc.Plan.Commands["dc-0-1"] = `
router bgp
 network 203.0.113.0/24
!
`
	add(CauseDesignFlaw, sc)

	// ---- existing misconfiguration (3 scenarios) ----

	// (12) The Figure 10(a) case: latent missing policy node.
	add(CauseExistingMisconfig, Fig10a())

	// (13) A pre-existing undefined-filter reference on an untouched router
	// becomes load-bearing after the change.
	sc = table2Scenario(change.RouteAttrModify)
	sc.Name = "t6-latent-undefined-filter"
	// Pre-damage the base network: rr-0-0's import from dc-0-1 references
	// an undefined prefix list with a DENY action; harmless while unused...
	mustCommands(sc.Net.Devices["rr-0-0"], `
route-map RM_LATENT deny 5
 match ip-prefix PL_NEVER_DEFINED
!
route-map RM_LATENT permit 10
!
`)
	// ...until the change binds it (part of the plan's "cleanup").
	sc.Plan.Commands["rr-0-0"] = fmt.Sprintf(`
router bgp
 neighbor %s route-map RM_LATENT in
!
`, sc.Net.Devices["dc-0-1"].Loopback)
	// rr-0-0 is alpha: the undefined filter matches everything, so the
	// deny-5 node now drops ALL routes from dc-0-1.
	sc.Intents = append(sc.Intents, intent.RouteIntent{
		Spec: "forall device in {rr-0-0}: POST||peer = dc-0-1 |> count() >= 1",
	})
	add(CauseExistingMisconfig, sc)

	// (14) A stale static route on an untouched router hijacks the newly
	// announced prefix.
	sc = table2Scenario(change.NewPrefix)
	sc.Name = "t6-stale-static"
	newP := sc.Plan.NewInputs[0].Prefix
	stale := sc.Net.Devices["border-1-0"]
	stale.Statics = append(stale.Statics, config.StaticRoute{
		VRF: netmodel.DefaultVRF, Prefix: newP,
		NextHop: linkAddrOf(sc, "border-1-0", "isp-1-0"), Preference: 1,
	})
	sc.Flows = append(sc.Flows, netmodel.Flow{
		Ingress: "border-1-0", Src: netip.MustParseAddr("198.18.6.1"),
		Dst: newP.Addr().Next(), SrcPort: 6666, DstPort: 443,
		Proto: netmodel.ProtoTCP, Volume: 1e6,
	})
	sc.Intents = append(sc.Intents, intent.PathIntent{
		Select:    intent.FlowSelector{Ingress: "border-1-0", DstWithin: newP},
		Traverse:  []string{"border-1-0", "dc-0-0"},
		Delivered: true,
	})
	add(CauseExistingMisconfig, sc)

	// ---- topology issues (1 scenario) ----

	// (15) Maintenance on one uplink while the redundant one is already
	// down: the DC is cut off.
	sc = table2Scenario(change.TopologyAdjust)
	sc.Name = "t6-redundancy-already-lost"
	links := upLinksOf(sc, "dc-0-1")       // the plan disables links[0] of dc-0-1
	sc.Net.Topo.SetLinkUp(links[1], false) // pre-existing failure of the twin
	sc.Intents = append(sc.Intents, intent.ReachIntent{
		Prefix: netip.MustParsePrefix("10.0.64.0/24"), Devices: []string{"rr-0-0"}, Want: true,
	})
	add(CauseTopologyIssue, sc)

	// ---- others (1 scenario) ----

	// (16) Specification gap: the operator's spec verifies but the default
	// "others do not change" heuristic (§7) reveals unexpected churn.
	sc = table2Scenario(change.TrafficSteering)
	sc.Name = "t6-default-nochange-catch"
	sc.Intents = append(sc.Intents, intent.RouteIntent{
		// The §7 heuristic: everything not mentioned must stay unchanged.
		Spec: "forall device in {rr-1-0}: peer = border-1-0 => PRE = POST",
	})
	// Make the steering leak into region 1 by also preferring routes
	// re-advertised across regions (the plan mistakenly applies the lp to
	// every ISP prefix, which region 1 imports too). To keep this scenario
	// self-contained we instead flip the probe intent: region 1 RR rows
	// from border-1-0 stay fixed, so the risk here is the churn on rr-0-0's
	// second ISP path, caught by a no-change spec on it.
	sc.Intents[len(sc.Intents)-1] = intent.RouteIntent{
		Spec: "forall device in {rr-0-0}: peer = border-0-0 => PRE = POST",
	}
	add(CauseOther, sc)

	return out
}

func replaceAll(s, old, new string) string { return strings.ReplaceAll(s, old, new) }

func rrLoopbackOf(sc *Scenario) string { return sc.Net.Devices["rr-0-0"].Loopback.String() }
