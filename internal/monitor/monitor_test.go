package monitor

import (
	"net/netip"
	"testing"

	"hoyan/internal/netmodel"
)

func row(dev, prefix string, rt netmodel.RouteType, weight uint32) netmodel.Route {
	return netmodel.Route{
		Device: dev, VRF: netmodel.DefaultVRF,
		Prefix:   netip.MustParsePrefix(prefix),
		NextHop:  netip.MustParseAddr("1.1.1.1"),
		Protocol: netmodel.ProtoBGP, RouteType: rt, Weight: weight,
	}
}

func ecmpRow(dev, prefix, nh string) netmodel.Route {
	r := row(dev, prefix, netmodel.RouteBest, 0)
	r.NextHop = netip.MustParseAddr(nh)
	return r
}

func TestRouteMonitorProjection(t *testing.T) {
	truth := netmodel.NewGlobalRIB([]netmodel.Route{
		ecmpRow("A", "10.0.0.0/24", "1.1.1.1"),
		ecmpRow("A", "10.0.0.0/24", "2.2.2.2"), // ECMP sibling
		row("A", "20.0.0.0/24", netmodel.RouteCandidate, 0),
		func() netmodel.Route { r := row("B", "10.0.0.0/24", netmodel.RouteBest, 32768); return r }(),
	})
	m := &RouteMonitor{}
	got := m.Collect(truth)
	// Candidates invisible; only one best per (device, vrf, prefix); weight
	// zeroed.
	if got.Len() != 2 {
		t.Fatalf("rows = %d, want 2: %v", got.Len(), got.Rows())
	}
	for _, r := range got.Rows() {
		if r.Weight != 0 {
			t.Error("weight must not propagate")
		}
		if r.RouteType != netmodel.RouteBest {
			t.Error("only best routes visible")
		}
	}
}

func TestRouteMonitorBMP(t *testing.T) {
	truth := netmodel.NewGlobalRIB([]netmodel.Route{
		ecmpRow("A", "10.0.0.0/24", "1.1.1.1"),
		ecmpRow("A", "10.0.0.0/24", "2.2.2.2"),
	})
	m := &RouteMonitor{BMPDevices: map[string]bool{"A": true}}
	if got := m.Collect(truth); got.Len() != 2 {
		t.Errorf("BMP device must expose ECMP siblings, got %d rows", got.Len())
	}
}

func TestRouteMonitorAgentFailure(t *testing.T) {
	truth := netmodel.NewGlobalRIB([]netmodel.Route{
		ecmpRow("A", "10.0.0.0/24", "1.1.1.1"),
		ecmpRow("B", "10.0.0.0/24", "1.1.1.1"),
	})
	m := &RouteMonitor{Faults: Faults{FailedRouteAgents: []string{"A"}}}
	got := m.Collect(truth)
	if got.Len() != 1 || got.Rows()[0].Device != "B" {
		t.Errorf("failed agent must drop A's routes: %v", got.Rows())
	}
}

func TestLiveShow(t *testing.T) {
	truth := netmodel.NewGlobalRIB([]netmodel.Route{
		ecmpRow("A", "10.0.0.0/24", "1.1.1.1"),
		ecmpRow("A", "10.0.0.0/24", "2.2.2.2"),
		ecmpRow("A", "20.0.0.0/24", "1.1.1.1"),
	})
	got := LiveShow(truth, []string{"10.0.0.0/24"})
	if len(got) != 2 {
		t.Errorf("live show must return full rows for selected prefixes, got %d", len(got))
	}
}

func TestTrafficMonitorFaults(t *testing.T) {
	id1 := netmodel.LinkID{A: "A", B: "B", AIface: "x", BIface: "y"}
	id2 := netmodel.LinkID{A: "B", B: "C", AIface: "x", BIface: "y"}
	truth := netmodel.LinkLoad{id1: 100, id2: 200}

	clean := (&TrafficMonitor{}).CollectLoads(truth)
	if clean[id1] != 100 || clean[id2] != 200 {
		t.Errorf("clean collection: %v", clean)
	}

	scaled := (&TrafficMonitor{Faults: Faults{FlowVolumeScale: 2}}).CollectLoads(truth)
	if scaled[id1] != 200 {
		t.Errorf("volume bug: %v", scaled)
	}

	hidden := (&TrafficMonitor{Faults: Faults{HiddenLinks: []netmodel.LinkID{id1}}}).CollectLoads(truth)
	if _, ok := hidden[id1]; ok {
		t.Error("hidden link must not be reported")
	}

	noisy := (&TrafficMonitor{Faults: Faults{LoadNoise: 0.1, NoiseSeed: 1}}).CollectLoads(truth)
	if noisy[id1] == 100 && noisy[id2] == 200 {
		t.Error("noise had no effect")
	}
	again := (&TrafficMonitor{Faults: Faults{LoadNoise: 0.1, NoiseSeed: 1}}).CollectLoads(truth)
	if noisy[id1] != again[id1] {
		t.Error("noise must be deterministic per seed")
	}
}

func TestCollectFlows(t *testing.T) {
	flows := []netmodel.Flow{{Volume: 10}, {Volume: 20}}
	got := (&TrafficMonitor{Faults: Faults{FlowVolumeScale: 1.5}}).CollectFlows(flows)
	if got[0].Volume != 15 || got[1].Volume != 30 {
		t.Errorf("scaled flows: %v", got)
	}
	if flows[0].Volume != 10 {
		t.Error("input mutated")
	}
}
