// Package monitor simulates the WAN's monitoring systems (§2.1): the BGP
// route monitoring system (session-based collection plus BMP), the traffic
// monitoring system (NetFlow/sFlow flow records and SNMP link counters), and
// the topology management system.
//
// Collectors sample a *ground-truth* simulation (the repo's stand-in for the
// live network) and reproduce the real systems' blind spots — only best
// routes are advertised to the BGP agent, locally-significant attributes
// (weight) do not propagate, ECMP siblings are hidden — plus injectable
// faults for the Table 4 accuracy campaign (agent failures, NetFlow volume
// bugs, stale topology).
package monitor

import (
	"math/rand"

	"hoyan/internal/netmodel"
	"slices"
	"strings"
)

// Faults configures monitoring-system defects to inject.
type Faults struct {
	// FailedRouteAgents lists devices whose BGP agent is down: none of
	// their routes are collected.
	FailedRouteAgents []string

	// FlowVolumeScale multiplies reported link loads (a vendor NetFlow
	// implementation bug). 0 means "no fault" (scale 1.0).
	FlowVolumeScale float64

	// HiddenLinks are links the topology system fails to report (stale
	// topology data).
	HiddenLinks []netmodel.LinkID

	// LoadNoise adds multiplicative noise of ±LoadNoise (fraction) to SNMP
	// counters, seeded deterministically.
	LoadNoise float64
	NoiseSeed int64
}

// RouteMonitor is the BGP route-collection system.
type RouteMonitor struct {
	// BMPDevices have the BGP Monitoring Protocol deployed: their full RIB
	// (including ECMP siblings) is visible. Other devices advertise only
	// their best route per prefix over the collection session.
	BMPDevices map[string]bool

	Faults Faults
}

// Collect samples the ground-truth global RIB the way the production
// monitoring system would see it.
func (m *RouteMonitor) Collect(truth *netmodel.GlobalRIB) *netmodel.GlobalRIB {
	failed := make(map[string]bool, len(m.Faults.FailedRouteAgents))
	for _, d := range m.Faults.FailedRouteAgents {
		failed[d] = true
	}
	var rows []netmodel.Route
	seenBest := map[string]bool{}
	for _, r := range truth.Rows() {
		if failed[r.Device] {
			continue
		}
		if r.RouteType != netmodel.RouteBest {
			continue // only selected routes are visible at all
		}
		if !m.BMPDevices[r.Device] {
			// Session-based collection: the router advertises one best route
			// per (vrf, prefix); ECMP siblings are invisible, and the
			// locally-significant weight attribute does not propagate.
			key := r.Device + "|" + r.VRF + "|" + r.Prefix.String()
			if seenBest[key] {
				continue
			}
			seenBest[key] = true
			r.Weight = 0
			r.IGPCost = 0
		}
		rows = append(rows, r)
	}
	return netmodel.NewGlobalRIB(rows)
}

// LiveShow is the guarded "show command" comparison path: it returns the
// full-fidelity routes of selected prefixes from the live network (showing
// all routes is prohibited in production, §5.1).
func LiveShow(truth *netmodel.GlobalRIB, prefixes []string) []netmodel.Route {
	want := make(map[string]bool, len(prefixes))
	for _, p := range prefixes {
		want[p] = true
	}
	var out []netmodel.Route
	for _, r := range truth.Rows() {
		if want[r.Prefix.String()] {
			out = append(out, r)
		}
	}
	return out
}

// TrafficMonitor is the NetFlow/sFlow + SNMP traffic-collection system.
type TrafficMonitor struct {
	Faults Faults
}

// CollectLoads samples the ground-truth per-link loads as SNMP counters,
// applying the configured faults and noise.
func (m *TrafficMonitor) CollectLoads(truth netmodel.LinkLoad) netmodel.LinkLoad {
	scale := m.Faults.FlowVolumeScale
	if scale == 0 {
		scale = 1.0
	}
	hidden := make(map[netmodel.LinkID]bool, len(m.Faults.HiddenLinks))
	for _, id := range m.Faults.HiddenLinks {
		hidden[id] = true
	}
	rnd := rand.New(rand.NewSource(m.Faults.NoiseSeed))
	out := make(netmodel.LinkLoad, len(truth))

	ids := make([]netmodel.LinkID, 0, len(truth))
	for id := range truth {
		ids = append(ids, id)
	}
	slices.SortFunc(ids, func(a, b netmodel.LinkID) int { return strings.Compare(a.String(), b.String()) })
	for _, id := range ids {
		if hidden[id] {
			continue
		}
		v := truth[id] * scale
		if m.Faults.LoadNoise > 0 {
			v *= 1 + (rnd.Float64()*2-1)*m.Faults.LoadNoise
		}
		out[id] = v
	}
	return out
}

// CollectFlows samples the ground-truth input flows as NetFlow/sFlow
// records, applying the volume-scale fault.
func (m *TrafficMonitor) CollectFlows(truth []netmodel.Flow) []netmodel.Flow {
	scale := m.Faults.FlowVolumeScale
	if scale == 0 {
		scale = 1.0
	}
	out := make([]netmodel.Flow, len(truth))
	for i, f := range truth {
		f.Volume *= scale
		out[i] = f
	}
	return out
}

// TopologyView returns the link set as the topology management system
// reports it (possibly stale: hidden links omitted).
func (m *TrafficMonitor) TopologyView(links []*netmodel.Link) []netmodel.LinkID {
	hidden := make(map[netmodel.LinkID]bool, len(m.Faults.HiddenLinks))
	for _, id := range m.Faults.HiddenLinks {
		hidden[id] = true
	}
	var out []netmodel.LinkID
	for _, l := range links {
		if !hidden[l.ID()] {
			out = append(out, l.ID())
		}
	}
	slices.SortFunc(out, func(a, b netmodel.LinkID) int { return strings.Compare(a.String(), b.String()) })
	return out
}
