//go:build !race

package hoyan

// raceEnabled reports whether the race detector is instrumenting this build.
const raceEnabled = false
