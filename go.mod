module hoyan

go 1.22
