// Parallel BGP fixpoint benchmarks: the prefix-striped propagation
// (bgp.Options.Parallelism via core.Options.Parallelism) versus the
// sequential indexed reference. `make bench-core` runs TestParallelFixpointSpeedup
// and merges a "parallel" section of per-parallelism rows into BENCH_core.json;
// the >=2x floor at Parallelism=NumCPU is enforced only on multi-core,
// uninstrumented hosts, while byte-identity with the sequential and legacy
// paths is asserted everywhere.
package hoyan

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"hoyan/internal/core"
	"hoyan/internal/gen"
)

// parallelRow is one entry of the "parallel" section of BENCH_core.json.
type parallelRow struct {
	Parallelism int     `json:"parallelism"`
	Ns          int64   `json:"ns"`
	Speedup     float64 `json:"speedup_vs_sequential"`
}

// parallelBenchReport is the "parallel" section: the host's core count, the
// sequential baseline, and one row per measured parallelism.
type parallelBenchReport struct {
	Devices      int           `json:"devices"`
	Inputs       int           `json:"inputs"`
	CPUs         int           `json:"cpus"`
	SequentialNs int64         `json:"sequential_ns"`
	Rows         []parallelRow `json:"rows"`
}

// TestParallelFixpointSpeedup pins the striped fixpoint's acceptance
// criteria on gen.WAN(2): byte-identical global RIBs versus the sequential
// indexed path and the string-keyed legacy reference at every parallelism,
// and — on hosts with at least 2 CPUs, without the race detector — at least
// 2x route-simulation speedup at Parallelism=NumCPU over Parallelism=1. With
// CORE_BENCH_JSON set, the measured per-parallelism rows are merged into that
// file under a "parallel" key (after TestCoreSpeedup wrote the base report).
func TestParallelFixpointSpeedup(t *testing.T) {
	g := gen.Generate(gen.WAN(2))
	if len(g.Inputs) == 0 {
		t.Fatal("fixture produced no inputs")
	}
	routeSim := func(parallelism int) {
		core.NewEngine(g.Net, core.Options{Parallelism: parallelism}).RouteSimulation(g.Inputs)
	}
	ncpu := runtime.NumCPU()

	// Byte-identity first: sequential indexed vs legacy, then every striped
	// setting vs sequential. This part runs on every host, race or not.
	ref := core.NewEngine(g.Net, core.Options{Parallelism: 1}).RouteSimulation(g.Inputs).GlobalRIB()
	leg := core.NewEngine(g.Net, core.Options{Parallelism: 1, DisableIndex: true}).RouteSimulation(g.Inputs).GlobalRIB()
	if !ref.Equal(leg) {
		t.Fatal("sequential indexed RIB differs from legacy reference on gen.WAN(2)")
	}
	parallelisms := []int{2, 4}
	if ncpu > 1 && ncpu != 2 && ncpu != 4 {
		parallelisms = append(parallelisms, ncpu)
	}
	for _, p := range parallelisms {
		got := core.NewEngine(g.Net, core.Options{Parallelism: p}).RouteSimulation(g.Inputs).GlobalRIB()
		if !got.Equal(ref) {
			t.Fatalf("parallelism %d: RIB differs from sequential on gen.WAN(2)", p)
		}
	}

	// Timed sweep: each parallelism paired against the sequential baseline
	// (measurePair keeps the best-ratio trial so a background spike cannot
	// bias one side).
	const trials, iters = 3, 1
	rep := parallelBenchReport{
		Devices: len(g.Net.Devices),
		Inputs:  len(g.Inputs),
		CPUs:    ncpu,
	}
	atNCPU := 0.0
	for _, p := range parallelisms {
		parNs, seqNs := measurePair(trials, iters,
			func() { routeSim(p) },
			func() { routeSim(1) })
		speedup := float64(seqNs) / float64(parNs)
		rep.SequentialNs = seqNs
		rep.Rows = append(rep.Rows, parallelRow{Parallelism: p, Ns: parNs, Speedup: speedup})
		if p == ncpu {
			atNCPU = speedup
		}
		t.Logf("parallelism %d: %.2fms vs sequential %.2fms (%.2fx)",
			p, float64(parNs)/1e6, float64(seqNs)/1e6, speedup)
	}

	// The floor needs real cores to mean anything: on a single-CPU host the
	// stripes serialize onto one core and only measure overhead, and the race
	// detector serializes goroutines through its shadow state. Byte-identity
	// above is asserted unconditionally.
	switch {
	case ncpu < 2:
		t.Logf("single-CPU host: >=2x floor not measurable, identity pinned instead")
	case raceEnabled:
		t.Logf("race detector active: >=2x floor skipped, identity pinned instead")
	case atNCPU < 2:
		t.Errorf("striped route sim only %.2fx faster at Parallelism=NumCPU(%d), want >=2x", atNCPU, ncpu)
	}

	if path := os.Getenv("CORE_BENCH_JSON"); path != "" {
		mergeParallelSection(t, path, rep)
	}
}

// mergeParallelSection writes rep under the "parallel" key of the
// BENCH_core.json document, preserving whatever TestCoreSpeedup wrote there
// first (or starting a fresh document when the file is absent).
func mergeParallelSection(t *testing.T, path string, rep parallelBenchReport) {
	t.Helper()
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("existing %s is not a JSON object: %v", path, err)
		}
	}
	section, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	doc["parallel"] = section
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("merged parallel section into %s\n", path)
}

// BenchmarkRouteSimParallel times the striped route simulation with
// Parallelism 0 (= GOMAXPROCS), so `go test -cpu 1,4` sweeps the worker
// count without code changes (the `make bench-core` sweep).
func BenchmarkRouteSimParallel(b *testing.B) {
	f := coreFixtures(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NewEngine(f.g.Net, core.Options{Parallelism: 0}).RouteSimulation(f.g.Inputs)
	}
}
