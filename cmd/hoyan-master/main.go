// Command hoyan-master hosts the distributed framework's substrates (MQ,
// object store, task DB) on TCP listeners and optionally drives one
// distributed route+traffic simulation over a generated WAN — a
// self-contained way to exercise the multi-process deployment with
// hoyan-worker processes on the same or other machines.
//
// Usage:
//
//	hoyan-master                               # just host the substrates
//	hoyan-master -run -scale 2 -subtasks 40    # host and drive a simulation
//	hoyan-master -run -shards 4                # sharded route stage (boundary contracts)
//	hoyan-master -run -http :7100              # + /metrics /healthz /debug/pprof
//	hoyan-master -data-dir /var/hoyan          # WAL-backed substrates
//	hoyan-master -data-dir /var/hoyan -resume cli-task -scale 2 -subtasks 40
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"hoyan/internal/core"
	"hoyan/internal/dsim"
	"hoyan/internal/durable"
	"hoyan/internal/gen"
	"hoyan/internal/mq"
	"hoyan/internal/objstore"
	"hoyan/internal/rpcx"
	"hoyan/internal/serve"
	"hoyan/internal/taskdb"
	"hoyan/internal/telemetry"
)

func main() {
	mqAddr := flag.String("mq", "127.0.0.1:7101", "message queue listen address")
	storeAddr := flag.String("store", "127.0.0.1:7102", "object store listen address")
	tasksAddr := flag.String("tasks", "127.0.0.1:7103", "task DB listen address")
	httpAddr := flag.String("http", "", "ops HTTP listen address for /metrics, /healthz, /debug/pprof (empty = off)")
	dataDir := flag.String("data-dir", "", "back the hosted substrates with WALs under this directory (empty = in-memory)")
	fsyncMode := flag.String("fsync", "interval", "WAL durability with -data-dir: always, interval, or never")
	resumeID := flag.String("resume", "", "resume this task from the -data-dir substrates instead of starting a new one (implies -run)")
	traceOut := flag.String("trace", "", "write the run's Chrome trace_event JSON here (with -run)")
	runSim := flag.Bool("run", false, "drive a distributed simulation after serving")
	scale := flag.Int("scale", 2, "gen.WAN scale for -run")
	subtasks := flag.Int("subtasks", 40, "route subtasks for -run")
	shards := flag.Int("shards", 0, "partition the route stage into this many region shards with boundary-route contracts (<=1 = whole-network)")
	timeout := flag.Duration("timeout", 10*time.Minute, "simulation timeout for -run")
	lease := flag.Duration("lease", 30*time.Second, "lease timeout before a silent worker's subtask is reclaimed (0 disables)")
	maxAttempts := flag.Int("max-attempts", 3, "attempts per subtask before the task fails permanently")
	flag.Parse()

	fsync, err := durable.ParsePolicy(*fsyncMode)
	if err != nil {
		fatal(err)
	}
	if *resumeID != "" && *dataDir == "" {
		fatal(fmt.Errorf("-resume needs -data-dir: there is nothing to recover from in-memory substrates"))
	}

	// One registry carries everything master-side: the hosted substrates'
	// server counters, the dialed clients' RPC metrics, and the master's own
	// scheduling metrics.
	reg := telemetry.NewRegistry()
	events := telemetry.NewEventLogger(os.Stderr, telemetry.F("role", "master"))

	// Ordered shutdown: everything registers here in startup order and closes
	// LIFO — listeners and the ops server stop before the substrates flush
	// their WALs.
	var closers serve.Closers
	defer func() {
		if err := closers.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "hoyan-master:", err)
		}
	}()

	// The hosted substrates: in-memory by default, WAL-backed under -data-dir.
	// Durable substrates report write health on /healthz — persistent append
	// failures degrade the process to 503 instead of crashing it.
	var (
		qsrv   mq.Queue       = mq.NewMemory()
		ssrv   objstore.Store = objstore.NewMemory()
		tsrv   taskdb.DB      = taskdb.NewMemory()
		health telemetry.Health
	)
	if *dataDir != "" {
		dopts := durable.Options{Fsync: fsync}
		disk, err := objstore.OpenDisk(filepath.Join(*dataDir, "objstore"), dopts)
		if err != nil {
			fatal(err)
		}
		db, err := taskdb.OpenDurable(filepath.Join(*dataDir, "taskdb.wal"), dopts)
		if err != nil {
			fatal(err)
		}
		dq, err := mq.OpenDurable(filepath.Join(*dataDir, "mq.wal"), dopts)
		if err != nil {
			fatal(err)
		}
		disk.Instrument(reg)
		db.Instrument(reg)
		dq.Instrument(reg)
		closers.Add("objstore", disk.Close)
		closers.Add("taskdb", db.Close)
		closers.Add("mq", func() error { dq.Close(); return nil })
		checks := []func() error{disk.Healthy, db.Healthy, dq.Healthy}
		health = func() error {
			for _, c := range checks {
				if err := c(); err != nil {
					return err
				}
			}
			return nil
		}
		qsrv, ssrv, tsrv = dq, disk, db
		fmt.Printf("durable substrates under %s (fsync=%s)\n", *dataDir, fsync)
	}

	lq := listen(*mqAddr)
	ls := listen(*storeAddr)
	lt := listen(*tasksAddr)
	mq.ServeRegistry(lq, qsrv, reg)
	objstore.ServeRegistry(ls, ssrv, reg)
	taskdb.ServeRegistry(lt, tsrv, reg)
	closers.Add("mq listener", lq.Close)
	closers.Add("store listener", ls.Close)
	closers.Add("tasks listener", lt.Close)
	fmt.Printf("substrates: mq=%s store=%s tasks=%s\n", lq.Addr(), ls.Addr(), lt.Addr())

	if srv, addr, err := telemetry.ServeOps(*httpAddr, reg, health, nil); err != nil {
		fatal(err)
	} else if srv != nil {
		closers.Add("ops server", srv.Close)
		fmt.Printf("ops: http://%s/metrics /healthz /debug/pprof\n", addr)
	}

	if !*runSim && *resumeID == "" {
		// Serve until SIGINT or SIGTERM; the deferred closers then stop the
		// listeners before flushing the substrate WALs.
		ctx, stop := serve.SignalContext(context.Background())
		defer stop()
		fmt.Println("serving; start hoyan-worker processes, SIGINT/SIGTERM stops")
		<-ctx.Done()
		return
	}

	queue, err := mq.DialOptions(lq.Addr().String(), rpcx.Options{Metrics: rpcx.NewMetrics(reg, "mq")})
	if err != nil {
		fatal(err)
	}
	store, err := objstore.DialOptions(ls.Addr().String(), rpcx.Options{Metrics: rpcx.NewMetrics(reg, "objstore")})
	if err != nil {
		fatal(err)
	}
	tasks, err := taskdb.DialOptions(lt.Addr().String(), rpcx.Options{Metrics: rpcx.NewMetrics(reg, "taskdb")})
	if err != nil {
		fatal(err)
	}
	master := dsim.NewMaster(dsim.Services{Queue: queue, Store: store, Tasks: tasks})
	master.Timeout = *timeout
	master.LeaseTimeout = *lease
	master.MaxAttempts = *maxAttempts
	master.Tracer = telemetry.NewTracer("master")
	master.Events = events
	master.Instrument(reg)

	taskID := "cli-task"
	if *resumeID != "" {
		taskID = *resumeID
	}
	g := gen.Generate(gen.WAN(*scale))
	fmt.Printf("generated WAN: %d devices, %d input routes, %d flows\n",
		len(g.Net.Devices), len(g.Inputs), len(g.Flows))
	runSpan := master.BeginRun(taskID)
	start := time.Now()
	var task *dsim.RouteTask
	var tt *dsim.TrafficTask
	if *resumeID != "" {
		// Re-enqueue whatever the previous incarnation left unfinished; the
		// traffic phase (if on record) resumes below, otherwise it starts
		// fresh off the regenerated flows (same -scale, same deterministic
		// generator).
		info, err := master.Resume(taskID)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("resumed task %s: %d route / %d traffic subtasks (%d done, %d re-enqueued)\n",
			taskID, info.RouteSubtasks, info.TrafficSubtasks, info.Done, info.Reenqueued)
		task = info.RouteTask()
		tt = info.TrafficTask()
	} else {
		snapKey, err := master.UploadSnapshot(taskID, g.Net)
		if err != nil {
			fatal(err)
		}
		if *shards > 1 {
			// Sharded route stage: workers run boundary-sealed fixpoints per
			// shard while the master drives contract-exchange rounds; Base
			// blocks until the seams are stable and the stitched result is
			// written, so the route Wait below is satisfied immediately.
			v := master.NewShardVerifier(snapKey, g.Net, g.Inputs, *shards, 0, core.Options{})
			fmt.Printf("sharded route stage: %d shards; waiting for workers...\n", v.Partition().NumShards())
			task, err = v.Base(taskID, *subtasks)
			if err != nil {
				fatal(err)
			}
			mode := "seams stable"
			if v.BaseFellBack {
				mode = "fell back to whole-network"
			}
			fmt.Printf("shard fixpoint: %d contract rounds, %d boundary routes (%s)\n",
				v.LastRounds, v.ContractRoutes(), mode)
		} else {
			task, err = master.StartRouteSimulation(taskID, snapKey, g.Inputs, *subtasks, core.Options{})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("enqueued %d route subtasks; waiting for workers...\n", task.Subtasks)
		}
	}
	if err := master.Wait(taskID, "route", task.Subtasks); err != nil {
		fatal(err)
	}
	rib, err := master.CollectRouteResults(task)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("route simulation done in %s: %d RIB rows\n",
		time.Since(start).Round(time.Millisecond), rib.Len())

	if tt == nil {
		tt, err = master.StartTrafficSimulation(taskID, task, g.Flows, *subtasks, dsim.StrategyOrdered, core.Options{})
		if err != nil {
			fatal(err)
		}
	}
	if err := master.Wait(taskID, "traffic", tt.Subtasks); err != nil {
		fatal(err)
	}
	sum, err := master.CollectTrafficResults(tt)
	if err != nil {
		fatal(err)
	}
	runSpan.End()
	fmt.Printf("traffic simulation done: %d flow paths, %d loaded links\n",
		len(sum.Paths), len(sum.Load))

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := telemetry.WriteChromeTrace(f, master.Tracer.Spans()); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("wrote master-side trace to %s (workers add their spans to the same trace IDs)\n", *traceOut)
	}
}

func listen(addr string) net.Listener {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	return l
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hoyan-master:", err)
	os.Exit(1)
}
