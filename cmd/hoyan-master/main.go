// Command hoyan-master hosts the distributed framework's substrates (MQ,
// object store, task DB) on TCP listeners and optionally drives one
// distributed route+traffic simulation over a generated WAN — a
// self-contained way to exercise the multi-process deployment with
// hoyan-worker processes on the same or other machines.
//
// Usage:
//
//	hoyan-master                               # just host the substrates
//	hoyan-master -run -scale 2 -subtasks 40    # host and drive a simulation
//	hoyan-master -run -http :7100              # + /metrics /healthz /debug/pprof
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"time"

	"hoyan/internal/core"
	"hoyan/internal/dsim"
	"hoyan/internal/gen"
	"hoyan/internal/mq"
	"hoyan/internal/objstore"
	"hoyan/internal/rpcx"
	"hoyan/internal/taskdb"
	"hoyan/internal/telemetry"
)

func main() {
	mqAddr := flag.String("mq", "127.0.0.1:7101", "message queue listen address")
	storeAddr := flag.String("store", "127.0.0.1:7102", "object store listen address")
	tasksAddr := flag.String("tasks", "127.0.0.1:7103", "task DB listen address")
	httpAddr := flag.String("http", "", "ops HTTP listen address for /metrics, /healthz, /debug/pprof (empty = off)")
	traceOut := flag.String("trace", "", "write the run's Chrome trace_event JSON here (with -run)")
	runSim := flag.Bool("run", false, "drive a distributed simulation after serving")
	scale := flag.Int("scale", 2, "gen.WAN scale for -run")
	subtasks := flag.Int("subtasks", 40, "route subtasks for -run")
	timeout := flag.Duration("timeout", 10*time.Minute, "simulation timeout for -run")
	lease := flag.Duration("lease", 30*time.Second, "lease timeout before a silent worker's subtask is reclaimed (0 disables)")
	maxAttempts := flag.Int("max-attempts", 3, "attempts per subtask before the task fails permanently")
	flag.Parse()

	// One registry carries everything master-side: the hosted substrates'
	// server counters, the dialed clients' RPC metrics, and the master's own
	// scheduling metrics.
	reg := telemetry.NewRegistry()
	events := telemetry.NewEventLogger(os.Stderr, telemetry.F("role", "master"))

	lq := listen(*mqAddr)
	ls := listen(*storeAddr)
	lt := listen(*tasksAddr)
	mq.ServeRegistry(lq, mq.NewMemory(), reg)
	objstore.ServeRegistry(ls, objstore.NewMemory(), reg)
	taskdb.ServeRegistry(lt, taskdb.NewMemory(), reg)
	fmt.Printf("substrates: mq=%s store=%s tasks=%s\n", lq.Addr(), ls.Addr(), lt.Addr())

	if srv, addr, err := telemetry.ServeOps(*httpAddr, reg, nil, nil); err != nil {
		fatal(err)
	} else if srv != nil {
		defer srv.Close()
		fmt.Printf("ops: http://%s/metrics /healthz /debug/pprof\n", addr)
	}

	if !*runSim {
		fmt.Println("serving; start hoyan-worker processes and press Ctrl-C to stop")
		wait()
		return
	}

	queue, err := mq.DialOptions(lq.Addr().String(), rpcx.Options{Metrics: rpcx.NewMetrics(reg, "mq")})
	if err != nil {
		fatal(err)
	}
	store, err := objstore.DialOptions(ls.Addr().String(), rpcx.Options{Metrics: rpcx.NewMetrics(reg, "objstore")})
	if err != nil {
		fatal(err)
	}
	tasks, err := taskdb.DialOptions(lt.Addr().String(), rpcx.Options{Metrics: rpcx.NewMetrics(reg, "taskdb")})
	if err != nil {
		fatal(err)
	}
	master := dsim.NewMaster(dsim.Services{Queue: queue, Store: store, Tasks: tasks})
	master.Timeout = *timeout
	master.LeaseTimeout = *lease
	master.MaxAttempts = *maxAttempts
	master.Tracer = telemetry.NewTracer("master")
	master.Events = events
	master.Instrument(reg)

	g := gen.Generate(gen.WAN(*scale))
	fmt.Printf("generated WAN: %d devices, %d input routes, %d flows\n",
		len(g.Net.Devices), len(g.Inputs), len(g.Flows))
	runSpan := master.BeginRun("cli-task")
	snapKey, err := master.UploadSnapshot("cli-task", g.Net)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	task, err := master.StartRouteSimulation("cli-task", snapKey, g.Inputs, *subtasks, core.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("enqueued %d route subtasks; waiting for workers...\n", task.Subtasks)
	if err := master.Wait("cli-task", "route", task.Subtasks); err != nil {
		fatal(err)
	}
	rib, err := master.CollectRouteResults(task)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("route simulation done in %s: %d RIB rows\n",
		time.Since(start).Round(time.Millisecond), rib.Len())

	tt, err := master.StartTrafficSimulation("cli-task", task, g.Flows, *subtasks, dsim.StrategyOrdered, core.Options{})
	if err != nil {
		fatal(err)
	}
	if err := master.Wait("cli-task", "traffic", tt.Subtasks); err != nil {
		fatal(err)
	}
	sum, err := master.CollectTrafficResults(tt)
	if err != nil {
		fatal(err)
	}
	runSpan.End()
	fmt.Printf("traffic simulation done: %d flow paths, %d loaded links\n",
		len(sum.Paths), len(sum.Load))

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := telemetry.WriteChromeTrace(f, master.Tracer.Spans()); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("wrote master-side trace to %s (workers add their spans to the same trace IDs)\n", *traceOut)
	}
}

func listen(addr string) net.Listener {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	return l
}

func wait() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hoyan-master:", err)
	os.Exit(1)
}
