// Command hoyan-worker is a standalone working server of the distributed
// simulation framework: it dials the MQ, object store, and task DB over TCP
// and consumes subtasks until interrupted (Figure 3's "working servers").
//
// Usage:
//
//	hoyan-worker -name w1 -mq HOST:PORT -store HOST:PORT -tasks HOST:PORT
//	hoyan-worker -http :7110     # + /metrics /healthz /debug/pprof
//
// Diagnostics are structured JSON lines on stderr (one object per event with
// worker/subtask/attempt fields), so chaos runs are machine-greppable.
// /healthz reports 503 once the worker has gone -stale without a successful
// substrate round-trip (queue poll or lease heartbeat), or once its last
// several result writes to the object store all failed (degraded storage).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"hoyan/internal/dsim"
	"hoyan/internal/mq"
	"hoyan/internal/objstore"
	"hoyan/internal/rpcx"
	"hoyan/internal/serve"
	"hoyan/internal/taskdb"
	"hoyan/internal/telemetry"
)

func main() {
	name := flag.String("name", "worker", "worker name (shown in the task DB)")
	mqAddr := flag.String("mq", "127.0.0.1:7101", "message queue address")
	storeAddr := flag.String("store", "127.0.0.1:7102", "object store address")
	tasksAddr := flag.String("tasks", "127.0.0.1:7103", "task DB address")
	httpAddr := flag.String("http", "", "ops HTTP listen address for /metrics, /healthz, /debug/pprof (empty = off)")
	stale := flag.Duration("stale", 15*time.Second, "substrate-contact staleness after which /healthz reports unhealthy")
	parallelism := flag.Int("parallelism", 0, "pin intra-engine parallelism per subtask (0 = use each task's own setting)")
	heartbeat := flag.Duration("heartbeat", time.Second, "lease heartbeat interval while executing a subtask")
	ribCache := flag.Int("ribcache", 0, "route-RIB file cache size in entries (0 = default, negative = disabled)")
	flag.Parse()

	reg := telemetry.NewRegistry()
	events := telemetry.NewEventLogger(os.Stderr)

	// Ordered shutdown: close the substrate clients in reverse dial order
	// once the consume loop has drained.
	var closers serve.Closers
	defer func() {
		if err := closers.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "hoyan-worker:", err)
		}
	}()

	queue, err := mq.DialOptions(*mqAddr, rpcx.Options{Metrics: rpcx.NewMetrics(reg, "mq")})
	if err != nil {
		fatal(err)
	}
	closers.Add("mq client", queue.Close)
	store, err := objstore.DialOptions(*storeAddr, rpcx.Options{Metrics: rpcx.NewMetrics(reg, "objstore")})
	if err != nil {
		fatal(err)
	}
	closers.Add("objstore client", store.Close)
	tasks, err := taskdb.DialOptions(*tasksAddr, rpcx.Options{Metrics: rpcx.NewMetrics(reg, "taskdb")})
	if err != nil {
		fatal(err)
	}
	closers.Add("taskdb client", tasks.Close)

	w := dsim.NewWorker(*name, dsim.Services{Queue: queue, Store: store, Tasks: tasks})
	w.Parallelism = *parallelism
	w.HeartbeatInterval = *heartbeat
	w.RIBCacheSize = *ribCache
	w.Tracer = telemetry.NewTracer(*name)
	w.Events = events
	// Free-form diagnostics ride the same structured stream as one field.
	w.Logf = func(format string, args ...any) {
		events.Log("log", telemetry.F("worker", *name), telemetry.F("msg", fmt.Sprintf(format, args...)))
	}
	w.Instrument(reg)

	health := func() error {
		// Degraded, not dead: persistent result-write failures flip /healthz
		// to 503 while the worker keeps retrying.
		if err := w.WriteHealth(); err != nil {
			return err
		}
		last := w.LastContact()
		if last.IsZero() {
			return nil // not started consuming yet
		}
		if age := time.Since(last); age > *stale {
			return fmt.Errorf("no substrate contact for %s (threshold %s)", age.Round(time.Millisecond), *stale)
		}
		return nil
	}
	if srv, addr, err := telemetry.ServeOps(*httpAddr, reg, health, nil); err != nil {
		fatal(err)
	} else if srv != nil {
		closers.Add("ops server", srv.Close)
		fmt.Printf("ops: http://%s/metrics /healthz /debug/pprof\n", addr)
	}

	// SIGINT or SIGTERM cancels the consume loop; Run returns after the
	// in-flight subtask finishes, then the closers run LIFO.
	ctx, stop := serve.SignalContext(context.Background())
	defer stop()
	fmt.Printf("worker %s consuming from %s\n", *name, *mqAddr)
	w.Run(ctx)
	st := w.Stats()
	fmt.Printf("worker %s done: snapshot cache %d/%d hits, RIB cache %d/%d hits, %d bytes fetched, %d bytes saved\n",
		*name, st.SnapshotHits, st.SnapshotHits+st.SnapshotMisses,
		st.RIBFileHits, st.RIBFileHits+st.RIBFileMisses, st.BytesFetched, st.BytesSaved)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hoyan-worker:", err)
	os.Exit(1)
}
