// Command hoyan-worker is a standalone working server of the distributed
// simulation framework: it dials the MQ, object store, and task DB over TCP
// and consumes subtasks until interrupted (Figure 3's "working servers").
//
// Usage:
//
//	hoyan-worker -name w1 -mq HOST:PORT -store HOST:PORT -tasks HOST:PORT
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"hoyan/internal/dsim"
	"hoyan/internal/mq"
	"hoyan/internal/objstore"
	"hoyan/internal/taskdb"
)

func main() {
	name := flag.String("name", "worker", "worker name (shown in the task DB)")
	mqAddr := flag.String("mq", "127.0.0.1:7101", "message queue address")
	storeAddr := flag.String("store", "127.0.0.1:7102", "object store address")
	tasksAddr := flag.String("tasks", "127.0.0.1:7103", "task DB address")
	parallelism := flag.Int("parallelism", 0, "pin intra-engine parallelism per subtask (0 = use each task's own setting)")
	heartbeat := flag.Duration("heartbeat", time.Second, "lease heartbeat interval while executing a subtask")
	ribCache := flag.Int("ribcache", 0, "route-RIB file cache size in entries (0 = default, negative = disabled)")
	flag.Parse()

	queue, err := mq.Dial(*mqAddr)
	if err != nil {
		fatal(err)
	}
	defer queue.Close()
	store, err := objstore.Dial(*storeAddr)
	if err != nil {
		fatal(err)
	}
	defer store.Close()
	tasks, err := taskdb.Dial(*tasksAddr)
	if err != nil {
		fatal(err)
	}
	defer tasks.Close()

	w := dsim.NewWorker(*name, dsim.Services{Queue: queue, Store: store, Tasks: tasks})
	w.Parallelism = *parallelism
	w.HeartbeatInterval = *heartbeat
	w.RIBCacheSize = *ribCache
	w.Logf = log.New(os.Stderr, *name+": ", log.LstdFlags).Printf
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fmt.Printf("worker %s consuming from %s\n", *name, *mqAddr)
	w.Run(ctx)
	st := w.Stats()
	fmt.Printf("worker %s done: snapshot cache %d/%d hits, RIB cache %d/%d hits, %d bytes fetched, %d bytes saved\n",
		*name, st.SnapshotHits, st.SnapshotHits+st.SnapshotMisses,
		st.RIBFileHits, st.RIBFileHits+st.RIBFileMisses, st.BytesFetched, st.BytesSaved)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hoyan-worker:", err)
	os.Exit(1)
}
