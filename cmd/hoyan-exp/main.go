// Command hoyan-exp regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	hoyan-exp [-scale N] [-trace FILE] [experiment...]
//
// Experiments: table1 fig1 table2 table3 fig5a fig5b fig5c fig5d fig8
// table4 table5 table6 fig9 ecstats incr serve report all (default: all).
//
// The report experiment runs one telemetry-instrumented distributed
// verification and prints the pipeline's per-stage breakdown; -trace
// additionally writes its end-to-end trace as Chrome trace_event JSON
// (load in chrome://tracing or https://ui.perfetto.dev).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hoyan/internal/experiments"
	"hoyan/internal/telemetry"
)

func main() {
	scaleK := flag.Int("scale", 0, "WAN scale multiplier (0 = default experiment scale)")
	traceOut := flag.String("trace", "", "write the report experiment's Chrome trace_event JSON here")
	shardsN := flag.Int("shards", 0, "run the report experiment's route stage through this many region shards (<=1 = whole-network)")
	flag.Parse()

	s := experiments.DefaultScale()
	if *scaleK > 0 {
		s.WANK = *scaleK
		s.DCNK = *scaleK
	}

	names := flag.Args()
	if len(names) == 0 {
		names = []string{"all"}
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	all := want["all"]
	run := func(name string, f func()) {
		if !all && !want[name] {
			return
		}
		start := time.Now()
		f()
		fmt.Printf("  [%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	out := os.Stdout

	run("table1", func() { experiments.PrintTable1(out, experiments.Table1()) })
	run("fig1", func() { experiments.PrintFig1(out, experiments.Fig1(s)) })
	run("table2", func() { experiments.PrintTable2(out, experiments.Table2()) })
	run("table3", func() { experiments.PrintTable3(out) })

	var fig5a *experiments.Fig5aResult
	need5a := all || want["fig5a"] || want["fig5c"]
	if need5a {
		fig5a = experiments.Fig5a(s)
	}
	run("fig5a", func() { experiments.PrintFig5a(out, fig5a) })
	run("fig5c", func() { experiments.PrintFig5c(out, fig5a.Durations) })

	var fig5b *experiments.Fig5bResult
	need5b := all || want["fig5b"] || want["fig5d"]
	if need5b {
		fig5b = experiments.Fig5b(s)
	}
	run("fig5b", func() { experiments.PrintFig5b(out, fig5b) })
	run("fig5d", func() { experiments.PrintFig5d(out, fig5b) })

	run("fig8", func() { experiments.PrintFig8(out, experiments.Fig8(s)) })
	run("table4", func() { experiments.PrintTable4(out, experiments.Table4(experiments.QuickScale())) })
	run("table5", func() { experiments.PrintTable5(out, experiments.Table5()) })
	run("table6", func() { experiments.PrintTable6(out, experiments.Table6()) })
	run("fig9", func() {
		summary, err := experiments.Fig9()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig9:", err)
			os.Exit(1)
		}
		fmt.Fprintln(out, summary)
	})
	run("ecstats", func() { experiments.PrintECStats(out, experiments.ECStats(s)) })
	run("incr", func() { experiments.PrintIncr(out, experiments.Incr(experiments.QuickScale())) })
	run("serve", func() {
		rep, err := experiments.ServeLoad(experiments.QuickScale(), 200)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		experiments.PrintServe(out, rep)
	})
	run("report", func() {
		rep, err := experiments.Report(s, *shardsN)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		experiments.PrintReport(out, rep)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "report:", err)
				os.Exit(1)
			}
			if err := telemetry.WriteChromeTrace(f, rep.Report.Spans); err != nil {
				fmt.Fprintln(os.Stderr, "report:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s (%d spans)\n", *traceOut, len(rep.Report.Spans))
		}
	})
}
