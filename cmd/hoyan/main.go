// Command hoyan runs one change verification end to end on a generated WAN
// snapshot or a directory of configuration files, mirroring the production
// system's REST-triggered verification path (§6): build the base model,
// apply the change plan, simulate (optionally on a local worker cluster),
// check the intents, and print the reports with counterexamples.
//
// Usage:
//
//	hoyan -scenario fig10a|fig10b              # run a built-in case study
//	hoyan -configs DIR -plan FILE -rcl SPEC    # verify a plan over configs
//
// The change plan file format is a sequence of device blocks:
//
//	@device <name>
//	<command lines in the device's own dialect>
//	@device <other>
//	...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hoyan/internal/change"
	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/intent"
	"hoyan/internal/localize"
	"hoyan/internal/pipeline"
	"hoyan/internal/scenario"
)

func main() {
	scenarioName := flag.String("scenario", "", "built-in case study: fig10a or fig10b")
	configDir := flag.String("configs", "", "directory of device configuration files")
	planFile := flag.String("plan", "", "change plan file (@device blocks)")
	rclSpec := flag.String("rcl", "", "route change intent in RCL")
	workers := flag.Int("workers", 0, "simulate on a local cluster with N workers (0 = centralized)")
	parallelism := flag.Int("parallelism", 0, "intra-engine parallelism: 0 = all cores, 1 = sequential, N = N workers")
	incremental := flag.Bool("incremental", true, "verify pure-delta plans (up/down toggles, input changes) as warm-started forks of the base run; false re-simulates every plan from scratch (results are identical)")
	doLocalize := flag.Bool("localize", false, "on violation, delta-debug the plan to a minimal culprit stanza set")
	flag.Parse()
	localizeWanted = *doLocalize
	parallelismFlag = *parallelism
	disableIncremental = !*incremental

	switch {
	case *scenarioName != "":
		runScenario(*scenarioName, *workers)
	case *configDir != "":
		runConfigs(*configDir, *planFile, *rclSpec, *workers)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

var (
	localizeWanted     bool
	parallelismFlag    int
	disableIncremental bool
)

func engineOptions() core.Options {
	return core.Options{Parallelism: parallelismFlag, DisableIncremental: disableIncremental}
}

func runScenario(name string, workers int) {
	var sc *scenario.Scenario
	switch name {
	case "fig10a":
		sc = scenario.Fig10a()
	case "fig10b":
		sc = scenario.Fig10b()
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q (want fig10a or fig10b)\n", name)
		os.Exit(2)
	}
	fmt.Printf("scenario: %s\n%s\n\n", sc.Name, sc.Description)
	sys := pipeline.New(sc.Net, sc.Inputs, sc.Flows, engineOptions())
	sys.Workers = workers
	out, err := sys.Verify(sc.Plan, sc.Intents)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verification error:", err)
		os.Exit(1)
	}
	printOutcome(out)
	if !out.OK {
		maybeLocalize(sys, sc.Plan, sc.Intents)
		os.Exit(1)
	}
}

// maybeLocalize runs the §7 misconfiguration localizer when requested.
func maybeLocalize(sys *pipeline.System, plan *change.Plan, intents []intent.Intent) {
	if !localizeWanted {
		return
	}
	res, err := localize.Localize(sys, plan, intents, localize.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "localize:", err)
		return
	}
	fmt.Println("\nmisconfiguration localization:")
	for _, u := range res.Unachieved {
		fmt.Printf("  unachieved goal (pre-existing or missing commands): %s\n", u)
	}
	if len(res.Culprits) > 0 {
		fmt.Printf("  minimal culprit stanzas (%d trials):\n", res.Trials)
		for _, c := range res.Culprits {
			fmt.Printf("    %s\n", c)
		}
	}
}

func runConfigs(dir, planFile, rclSpec string, workers int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fatal(err)
	}
	configs := map[string]string{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			fatal(err)
		}
		name := strings.TrimSuffix(e.Name(), filepath.Ext(e.Name()))
		configs[name] = string(data)
	}
	net, err := config.BuildNetworkOpts(configs, nil, config.BuildOptions{Parallelism: parallelismFlag})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("base model: %d devices parsed\n", len(net.Devices))

	plan := &change.Plan{ID: "cli", Type: change.RouteAttrModify, Commands: map[string]string{}}
	if planFile != "" {
		data, err := os.ReadFile(planFile)
		if err != nil {
			fatal(err)
		}
		if err := parsePlan(string(data), plan); err != nil {
			fatal(err)
		}
	}
	var intents []intent.Intent
	if rclSpec != "" {
		intents = append(intents, intent.RouteIntent{Spec: rclSpec})
	}
	sys := pipeline.New(net, nil, nil, engineOptions())
	sys.Workers = workers
	out, err := sys.Verify(plan, intents)
	if err != nil {
		fatal(err)
	}
	printOutcome(out)
	if !out.OK {
		maybeLocalize(sys, plan, intents)
		os.Exit(1)
	}
}

// parsePlan reads @device blocks into the plan's command map.
func parsePlan(text string, plan *change.Plan) error {
	cur := ""
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "@device ") {
			cur = strings.TrimSpace(strings.TrimPrefix(trimmed, "@device "))
			continue
		}
		if cur == "" {
			if trimmed == "" {
				continue
			}
			return fmt.Errorf("plan line %q outside a @device block", trimmed)
		}
		plan.Commands[cur] += line + "\n"
	}
	return nil
}

func printOutcome(out *pipeline.Outcome) {
	fmt.Printf("plan %s applied: %d devices touched, %d command lines\n",
		out.Plan.ID, len(out.Plan.Commands), out.Plan.CommandLines())
	for _, rep := range out.Reports {
		status := "SATISFIED"
		if !rep.Satisfied {
			status = "VIOLATED"
		}
		fmt.Printf("[%s] %s\n", status, rep.Intent)
		for _, v := range rep.Violations {
			fmt.Printf("    %s\n", v)
		}
	}
	if out.OK {
		fmt.Println("verdict: change plan verified")
	} else {
		fmt.Println("verdict: change plan REJECTED (see counterexamples)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hoyan:", err)
	os.Exit(1)
}
