// Command rcl parses and checks RCL route-change-intent specifications.
//
// Usage:
//
//	rcl -spec 'prefix = 10.0.0.0/24 => POST |> distVals(localPref) = {300}' \
//	    -pre base.json -post updated.json
//	rcl -spec '...' -parse-only
//
// The RIB files are JSON arrays of route rows as written by the distributed
// framework's result files (core.EncodeRoutes).
package main

import (
	"flag"
	"fmt"
	"os"

	"hoyan/internal/core"
	"hoyan/internal/netmodel"
	"hoyan/internal/rcl"
)

func main() {
	spec := flag.String("spec", "", "RCL specification text")
	preFile := flag.String("pre", "", "base global RIB (JSON route rows)")
	postFile := flag.String("post", "", "updated global RIB (JSON route rows)")
	parseOnly := flag.Bool("parse-only", false, "only parse and print the canonical form")
	flag.Parse()

	if *spec == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, err := rcl.Parse(*spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("canonical: %s\nsize: %d internal nodes\n", rcl.String(g), g.Size())
	if *parseOnly {
		return
	}
	if *preFile == "" || *postFile == "" {
		fmt.Fprintln(os.Stderr, "rcl: -pre and -post RIB files required for checking")
		os.Exit(2)
	}
	base, err := loadRIB(*preFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	updated, err := loadRIB(*postFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := rcl.Check(g, base, updated)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if res.Holds {
		fmt.Println("intent HOLDS")
		return
	}
	fmt.Println("intent VIOLATED:")
	for _, v := range res.Violations {
		fmt.Printf("  %s\n", v)
		for _, r := range v.Routes {
			fmt.Printf("    route: %s\n", r)
		}
	}
	os.Exit(1)
}

func loadRIB(path string) (*netmodel.GlobalRIB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := core.DecodeRoutes(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return netmodel.NewGlobalRIB(rows), nil
}
