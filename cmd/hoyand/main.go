// Command hoyand is Hoyan's verification-as-a-service daemon: it loads a
// network snapshot once, converges the base simulation, and then serves
// what-if queries over REST — each query a warm incremental fork instead of
// a cold CLI run.
//
// Usage:
//
//	hoyand -gen 1 -http :8080                    # serve a generated WAN
//	hoyand -snapshot wan.bundle -http :8080      # serve a wire-format bundle
//	hoyand -configs DIR -http :8080              # serve a config directory
//	hoyand -gen 1 -write-snapshot wan.bundle     # export a bundle and exit
//	hoyand -gen 1 -data-dir /var/hoyand          # + WAL-backed run history
//
// Tenants come from -tenants FILE (a JSON array of tenant objects) or the
// single built-in tenant -api-key KEY. The daemon drains gracefully on
// SIGINT/SIGTERM: new queries get 503, queued and running ones finish.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hoyan/internal/config"
	"hoyan/internal/core"
	"hoyan/internal/durable"
	"hoyan/internal/gen"
	"hoyan/internal/netmodel"
	"hoyan/internal/serve"
	"hoyan/internal/telemetry"
)

func main() {
	httpAddr := flag.String("http", ":8080", "REST listen address")
	snapshotFile := flag.String("snapshot", "", "wire-format snapshot bundle to serve (see -write-snapshot)")
	configDir := flag.String("configs", "", "directory of device configuration files to serve")
	genScale := flag.Int("gen", 0, "serve a generated WAN at this scale (used when -snapshot and -configs are unset; 0 = scale 1)")
	writeSnapshot := flag.String("write-snapshot", "", "write the loaded network as a wire bundle to this file and exit")
	tenantsFile := flag.String("tenants", "", "JSON file with the tenant list (name, api_key, rate_per_sec, burst, max_in_flight, weight)")
	apiKey := flag.String("api-key", "hoyan-dev", "API key of the built-in default tenant (ignored with -tenants)")
	workers := flag.Int("workers", 4, "query worker pool size")
	queueDepth := flag.Int("queue", 256, "max queued queries before 429 backpressure")
	deadline := flag.Duration("deadline", 60*time.Second, "default per-query deadline")
	dataDir := flag.String("data-dir", "", "persist the run history under this directory (empty = no history)")
	fsyncMode := flag.String("fsync", "interval", "history WAL durability with -data-dir: always, interval, or never")
	historySize := flag.Int("history", 1024, "retained run-history entries")
	parallelism := flag.Int("parallelism", 0, "intra-engine parallelism for the base simulation, including the striped BGP fixpoint (0 = all cores)")
	queryParallelism := flag.Int("query-parallelism", 0, "max simulation cores per query, so one tenant's sweep cannot starve others (0 = NumCPU/workers)")
	flag.Parse()

	fsync, err := durable.ParsePolicy(*fsyncMode)
	if err != nil {
		fatal(err)
	}

	network, inputs, flows, source, err := loadModel(*snapshotFile, *configDir, *genScale)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("model from %s: %d devices, %d links, %d input routes, %d flows\n",
		source, len(network.Devices), len(network.Topo.Links()), len(inputs), len(flows))

	if *writeSnapshot != "" {
		f, err := os.Create(*writeSnapshot)
		if err != nil {
			fatal(err)
		}
		if err := serve.EncodeBundle(f, network, inputs, flows); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote snapshot bundle to %s\n", *writeSnapshot)
		return
	}

	tenants, err := loadTenants(*tenantsFile, *apiKey)
	if err != nil {
		fatal(err)
	}

	reg := telemetry.NewRegistry()
	srv, err := serve.NewServer(serve.Config{
		Tenants:          tenants,
		QueueDepth:       *queueDepth,
		Workers:          *workers,
		QueryParallelism: *queryParallelism,
		DefaultDeadline:  *deadline,
		HistoryDir:       historyDir(*dataDir),
		HistorySize:      *historySize,
		Durable:          durable.Options{Fsync: fsync},
		Registry:         reg,
		Sim:              core.Options{Parallelism: *parallelism},
	})
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	if _, err := srv.LoadNetwork("boot", network, inputs, flows, true); err != nil {
		fatal(err)
	}
	fmt.Printf("base simulation converged in %s; queries are warm forks from here\n",
		time.Since(start).Round(time.Millisecond))

	l, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go hs.Serve(l)
	fmt.Printf("hoyand serving on http://%s (tenants: %s)\n", l.Addr(), tenantNames(tenants))

	// Drain on SIGINT/SIGTERM: stop accepting (the listener closes last-in
	// first-out AFTER the query drain, so in-flight status polls still work
	// while queries finish).
	ctx, stop := serve.SignalContext(context.Background())
	defer stop()
	<-ctx.Done()
	fmt.Println("signal received; draining")

	var closers serve.Closers
	closers.Add("http listener", func() error {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(sctx)
	})
	dctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "hoyand: drain:", err)
	}
	if err := closers.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "hoyand:", err)
	}
	fmt.Println("drained; bye")
}

// loadModel resolves the three snapshot sources in precedence order.
func loadModel(snapshotFile, configDir string, genScale int) (*config.Network, []netmodel.Route, []netmodel.Flow, string, error) {
	switch {
	case snapshotFile != "":
		f, err := os.Open(snapshotFile)
		if err != nil {
			return nil, nil, nil, "", err
		}
		defer f.Close()
		network, inputs, flows, err := serve.DecodeBundle(f)
		if err != nil {
			return nil, nil, nil, "", fmt.Errorf("decoding %s: %w", snapshotFile, err)
		}
		return network, inputs, flows, snapshotFile, nil
	case configDir != "":
		entries, err := os.ReadDir(configDir)
		if err != nil {
			return nil, nil, nil, "", err
		}
		configs := make(map[string]string)
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			text, err := os.ReadFile(filepath.Join(configDir, e.Name()))
			if err != nil {
				return nil, nil, nil, "", err
			}
			name := strings.TrimSuffix(e.Name(), filepath.Ext(e.Name()))
			configs[name] = string(text)
		}
		network, err := config.BuildNetworkOpts(configs, nil, config.BuildOptions{Parallelism: 0})
		if err != nil {
			return nil, nil, nil, "", err
		}
		return network, nil, nil, configDir, nil
	default:
		scale := genScale
		if scale <= 0 {
			scale = 1
		}
		out := gen.Generate(gen.WAN(scale))
		return out.Net, out.Inputs, out.Flows, fmt.Sprintf("gen.WAN(%d)", scale), nil
	}
}

func loadTenants(file, apiKey string) ([]serve.TenantConfig, error) {
	if file == "" {
		return []serve.TenantConfig{{Name: "default", APIKey: apiKey}}, nil
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var tenants []serve.TenantConfig
	if err := json.Unmarshal(data, &tenants); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", file, err)
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("%s declares no tenants", file)
	}
	return tenants, nil
}

func historyDir(dataDir string) string {
	if dataDir == "" {
		return ""
	}
	return filepath.Join(dataDir, "history")
}

func tenantNames(tenants []serve.TenantConfig) string {
	names := make([]string, len(tenants))
	for i, t := range tenants {
		names[i] = t.Name
	}
	return strings.Join(names, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hoyand:", err)
	os.Exit(1)
}
