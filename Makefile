GO ?= go

.PHONY: all build test vet race bench-smoke bench-core bench-wire bench-incr bench-durable bench-shard bench-serve chaos chaos-restart trace check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over every package: the parallel engine hot paths (SPF,
# forwarding, ECs, config parse) and the concurrent-engine tests must stay
# race-clean on every PR.
race:
	$(GO) test -race ./...

# One iteration of every benchmark, to catch bit-rot in the bench harness
# (including the BenchmarkParallel* scaling sweeps) without timing anything.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Index-based core measurement: the dense-ID route simulation vs the
# preserved string-keyed reference (core.Options.DisableIndex) on the
# gen.WAN(1) fixture. Asserts the >=3x route-sim floor and writes the
# measured ratio, per-run allocation profile, and interner stats to
# BENCH_core.json; the one-shot Benchmark{Core,RouteSim}* pass catches
# bench bit-rot.
bench-core:
	CORE_BENCH_JSON=BENCH_core.json $(GO) test -run '^Test(CoreSpeedup|ParallelFixpointSpeedup)$$' -v .
	$(GO) test -run '^$$' -bench '^Benchmark(Core|RouteSim)' -benchtime 1x -cpu 1,4 .

# Wire-codec size/speed measurement: binary format vs the legacy JSON
# encoding on the gen.WAN(2) fixture. Asserts the >=3x size / >=2x decode
# floors and writes the measured numbers to BENCH_wire.json; the one-shot
# BenchmarkWire* pass catches bench bit-rot.
bench-wire:
	WIRE_BENCH_JSON=BENCH_wire.json $(GO) test -run '^TestWireCompactness$$' -v .
	$(GO) test -run '^$$' -bench '^BenchmarkWire' -benchtime 1x .

# Incremental what-if engine measurement: the warm-started k=1 link-failure
# sweep vs from-scratch re-simulation of every scenario on the gen.WAN(1)
# fixture. Asserts the >=3x scenario-throughput floor and writes the
# measured numbers (plus work-avoidance counters) to BENCH_incremental.json;
# the one-shot BenchmarkKFail* pass catches bench bit-rot.
bench-incr:
	INCR_BENCH_JSON=BENCH_incremental.json $(GO) test -run '^TestIncrementalSpeedup$$' -v .
	$(GO) test -run '^$$' -bench '^BenchmarkKFail' -benchtime 1x .

# Sharded-verification measurement: intra-shard what-if scenarios through
# the sharded fleet (touched shards only, boundary-sealed, warm contract
# state) vs whole-network distributed re-simulation on the gen.WAN(2)
# fixture. Asserts the >=2x scenario-sweep floor and writes the measured
# numbers (plus contract-state footprint) to BENCH_shard.json; the one-shot
# Benchmark{ShardWhatIf,WholeNetworkScenario} pass catches bench bit-rot.
bench-shard:
	SHARD_BENCH_JSON=BENCH_shard.json $(GO) test -run '^TestShardSpeedup$$' -v .
	$(GO) test -run '^$$' -bench '^Benchmark(ShardWhatIf|WholeNetworkScenario)$$' -benchtime 1x .

# Durable-substrate measurement: the distributed pipeline over WAL-backed
# disk substrates vs in-memory ones. Asserts the <=1.25x fsync=interval
# overhead floor and writes the measured wall times to BENCH_durable.json;
# the one-shot BenchmarkDurable* pass catches bench bit-rot.
bench-durable:
	DURABLE_BENCH_JSON=BENCH_durable.json $(GO) test -run '^TestDurableOverhead$$' -v .
	$(GO) test -run '^$$' -bench '^BenchmarkDurable' -benchtime 1x .

# Verification-as-a-service measurement: a warm synchronous what-if query
# against a running hoyand (HTTP submit with ?wait=1, engine fork, digest,
# delta) vs the cold CLI path (re-parse configs, rebuild the engine,
# simulate from scratch) on the gen.WAN(1) fixture. Asserts the >=3x
# warm-query latency floor and writes the measured numbers to
# BENCH_serve.json; the one-shot BenchmarkServe* pass catches bench bit-rot.
bench-serve:
	SERVE_BENCH_JSON=BENCH_serve.json $(GO) test -run '^TestServeWarmSpeedup$$' -v .
	$(GO) test -run '^$$' -bench '^BenchmarkServe' -benchtime 1x .

# Fault-tolerance pass: the chaos harness (crashed workers, >=10% injected
# substrate error rates) plus the resilience tests, under the race detector.
chaos:
	$(GO) test -race -run 'TestChaos|TestWorker|TestStale' -v ./internal/dsim/
	$(GO) test -race ./internal/faults/ ./internal/retry/ ./internal/rpcx/

# Crash-restart pass: kill-and-recover chaos for the durable substrates and
# the master (torn WAL tails, mid-run substrate restarts, Master.Resume),
# plus the WAL recovery and restart-wrapper unit tests, under the race
# detector.
chaos-restart:
	$(GO) test -race -run 'TestRestart|TestResume' -v ./internal/dsim/
	$(GO) test -race ./internal/durable/ ./internal/objstore/ ./internal/taskdb/ ./internal/mq/ ./internal/faults/

# Observability demo: one instrumented distributed run; prints the per-stage
# breakdown and writes the end-to-end trace to trace.json (view it in
# chrome://tracing or https://ui.perfetto.dev).
trace:
	$(GO) run ./cmd/hoyan-exp -scale 1 -trace trace.json report

check: vet build race bench-smoke bench-core bench-wire bench-incr bench-durable bench-shard bench-serve chaos chaos-restart
