GO ?= go

.PHONY: all build test vet race bench-smoke check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over every package: the parallel engine hot paths (SPF,
# forwarding, ECs, config parse) and the concurrent-engine tests must stay
# race-clean on every PR.
race:
	$(GO) test -race ./...

# One iteration of every benchmark, to catch bit-rot in the bench harness
# (including the BenchmarkParallel* scaling sweeps) without timing anything.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

check: vet build race bench-smoke
