// Incremental what-if engine benchmarks: a warm-started k=1 link-failure
// sweep versus from-scratch re-simulation of every scenario, on a generated
// WAN. `make bench-incr` runs these and writes the measured throughput gap
// and work-avoidance counters to BENCH_incremental.json;
// TestIncrementalSpeedup pins the acceptance floor (>=3x scenario
// throughput).
package hoyan

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"hoyan/internal/core"
	"hoyan/internal/gen"
	"hoyan/internal/intent"
	"hoyan/internal/kfail"
	"hoyan/internal/telemetry"
)

// incrFixture is the sweep under measurement: every single-link failure of
// the gen.WAN(1) topology (capped), checked against a load intent so the
// full route + traffic pipeline runs per scenario. Parallelism is pinned to
// 1 on both axes so the ratio isolates the warm-start effect.
type incrFixture struct {
	g       *gen.Output
	intents []intent.Intent
	opts    kfail.Options
}

func incrFixtures(tb testing.TB) *incrFixture {
	g := gen.Generate(gen.WAN(1))
	if len(g.Flows) == 0 {
		tb.Fatal("fixture produced no flows")
	}
	return &incrFixture{
		g:       g,
		intents: []intent.Intent{intent.LoadIntent{MaxUtilization: 1.0}},
		opts:    kfail.Options{K: 1, MaxScenarios: 30, Parallelism: 1, Sim: core.Options{Parallelism: 1}},
	}
}

func (f *incrFixture) sweep(tb testing.TB, incremental bool, reg *telemetry.Registry) *kfail.Result {
	opts := f.opts
	opts.Sim.DisableIncremental = !incremental
	opts.Registry = reg
	res, err := kfail.Check(f.g.Net, f.g.Inputs, f.g.Flows, f.intents, opts)
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

// BenchmarkKFailIncremental times the k=1 sweep with warm-started forks —
// touched-source SPF, warm BGP fixpoint, trace-invalidated forwarding.
func BenchmarkKFailIncremental(b *testing.B) {
	f := incrFixtures(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.sweep(b, true, nil)
	}
}

// BenchmarkKFailFromScratch times the same sweep with DisableIncremental —
// every scenario re-simulated from zero (the sequential reference path the
// identity tests compare against).
func BenchmarkKFailFromScratch(b *testing.B) {
	f := incrFixtures(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.sweep(b, false, nil)
	}
}

// incrBenchReport is the BENCH_incremental.json schema (`make bench-incr`).
type incrBenchReport struct {
	Scenarios     int     `json:"scenarios"`
	IncrementalNs int64   `json:"incremental_ns"`
	FromScratchNs int64   `json:"from_scratch_ns"`
	Speedup       float64 `json:"speedup"`

	SPFSourcesReused int64 `json:"spf_sources_reused"`
	BGPTablesDirty   int64 `json:"bgp_tables_dirty"`
	WarmRounds       int64 `json:"warm_rounds"`
	FlowsReused      int64 `json:"flows_reused"`
	FullFallbacks    int64 `json:"full_fallbacks"`
}

// TestIncrementalSpeedup pins the incremental engine's acceptance floor: the
// warm-started k=1 failure sweep must clear at least 3x the scenario
// throughput of from-scratch re-simulation. Measurements are paired per
// trial (like TestWireCompactness) so a background spike on a loaded host
// lands on both sides of a trial instead of biasing the ratio. With
// INCR_BENCH_JSON set it also writes the measured numbers to that path
// (used by `make bench-incr` to produce BENCH_incremental.json).
func TestIncrementalSpeedup(t *testing.T) {
	f := incrFixtures(t)

	// One instrumented warm-up sweep collects the work-avoidance counters
	// and primes caches for both paths.
	reg := telemetry.NewRegistry()
	res := f.sweep(t, true, reg)

	const trials = 4
	incNs, refNs := measurePair(trials, 1,
		func() { f.sweep(t, true, nil) },
		func() { f.sweep(t, false, nil) })

	rep := incrBenchReport{
		Scenarios:        res.Scenarios,
		IncrementalNs:    incNs,
		FromScratchNs:    refNs,
		Speedup:          float64(refNs) / float64(incNs),
		SPFSourcesReused: reg.Counter("incr_spf_sources_reused", "").Value(),
		BGPTablesDirty:   reg.Counter("incr_bgp_tables_dirty", "").Value(),
		WarmRounds:       reg.Counter("incr_warm_rounds", "").Value(),
		FlowsReused:      reg.Counter("incr_flows_reused", "").Value(),
		FullFallbacks:    reg.Counter("incr_full_fallbacks_total", "").Value(),
	}

	t.Logf("%d scenarios: incremental %dms vs from-scratch %dms (%.2fx)",
		rep.Scenarios, rep.IncrementalNs/1e6, rep.FromScratchNs/1e6, rep.Speedup)
	t.Logf("work avoided: %d SPF sources reused, %d BGP tables dirtied, %d warm rounds, %d flows reused, %d full fallbacks",
		rep.SPFSourcesReused, rep.BGPTablesDirty, rep.WarmRounds, rep.FlowsReused, rep.FullFallbacks)

	if rep.Speedup < 3 {
		t.Errorf("incremental sweep only %.2fx faster than from-scratch, want >=3x", rep.Speedup)
	}

	if path := os.Getenv("INCR_BENCH_JSON"); path != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
