// Daily configuration auditing and fault-tolerance checking (§6.2).
//
// Each day Hoyan simulates the live configurations and executes auditing
// tasks — high-level invariants the network must hold — plus k-failure
// checks that the designed redundancy actually exists.
//
//	go run ./examples/audit
package main

import (
	"fmt"
	"log"
	"net/netip"

	"hoyan/internal/core"
	"hoyan/internal/gen"
	"hoyan/internal/intent"
	"hoyan/internal/kfail"
	"hoyan/internal/pipeline"
)

func main() {
	out := gen.Generate(gen.WAN(1))
	sys := pipeline.New(out.Net, out.Inputs, out.Flows, core.Options{})

	// ---- auditing tasks over the live (base) state ----
	audits := []intent.Intent{
		// Every region's aggregate prefix must be present on every RR.
		intent.RouteIntent{Spec: "forall device in {rr-0-0, rr-1-0, rr-2-0}: prefix = 10.0.0.0/16 and routeType = BEST => POST |> count() >= 1"},
		// No-export-tagged routes must never appear on ISP routers.
		intent.RouteIntent{Spec: "forall device in {isp-0-0, isp-1-0, isp-2-0}: POST||(communities has 65000:999) |> count() = 0"},
		// No link runs hot in the steady state.
		intent.LoadIntent{MaxUtilization: 0.9},
	}
	reports, ok := sys.Audit(audits)
	fmt.Println("daily configuration audit:")
	for _, rep := range reports {
		status := "PASS"
		if !rep.Satisfied {
			status = "FAIL"
		}
		fmt.Printf("  [%s] %s\n", status, rep.Intent)
		for _, v := range rep.Violations {
			fmt.Println("       ", v)
		}
	}
	if !ok {
		log.Fatal("audit failed")
	}

	// ---- k-failure checking ----
	// Region 0's first DC prefix must survive any single uplink failure of
	// its gateway (the gateway is dual-homed by design).
	var elems []kfail.Element
	for _, l := range out.Net.Topo.LinksOf("dc-0-0") {
		elems = append(elems, kfail.Element{Link: l.ID()})
	}
	reach := intent.ReachIntent{
		Prefix:  netip.MustParsePrefix("10.0.0.0/24"),
		Devices: []string{"rr-1-0"},
		Want:    true,
	}
	res, err := kfail.Check(out.Net, out.Inputs, nil, []intent.Intent{reach}, kfail.Options{K: 1, Elements: elems})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nk=1 failure check over %d scenarios: ", res.Scenarios)
	if res.OK() {
		fmt.Println("PASS (single uplink failures tolerated)")
	} else {
		fmt.Println("FAIL")
		for _, v := range res.Violations {
			fmt.Printf("  fails under %v\n", v.Failed)
		}
	}

	// k=2 exposes the designed limit: losing both uplinks cuts the DC off.
	res2, err := kfail.Check(out.Net, out.Inputs, nil, []intent.Intent{reach}, kfail.Options{K: 2, Elements: elems})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k=2 failure check over %d scenarios: %d violations (expected: the double-failure cut)\n",
		res2.Scenarios, len(res2.Violations))
}
