// Traffic shift to the new WAN — the paper's Figure 10(a) case study.
//
// The operators plan to shift traffic for 1.0.0.0/24 from the old WAN
// (router A) to the new WAN (router B) by deleting the deny-all node from
// the pre-installed ingress policies on M1 and M2. M1's policy, however, is
// missing the permit node — a latent misconfiguration with no effect before
// the change. Hoyan detects all three consequences the paper describes:
// M1 never installs route R, the traffic detours M1-A-M2-B, and the thin
// A-M2 link overloads.
//
//	go run ./examples/trafficshift
package main

import (
	"fmt"
	"log"
	"strings"

	"hoyan/internal/core"
	"hoyan/internal/pipeline"
	"hoyan/internal/scenario"
)

func main() {
	sc := scenario.Fig10a()
	fmt.Println(sc.Description)
	fmt.Println()

	sys := pipeline.New(sc.Net, sc.Inputs, sc.Flows, core.Options{})
	out, err := sys.Verify(sc.Plan, sc.Intents)
	if err != nil {
		log.Fatal(err)
	}

	for _, rep := range out.Reports {
		status := "SATISFIED"
		if !rep.Satisfied {
			status = "VIOLATED"
		}
		fmt.Printf("[%s] %s\n", status, rep.Intent)
		for _, v := range rep.Violations {
			fmt.Println("   ", v)
		}
	}

	fmt.Println("\nsimulated forwarding after the change:")
	for _, fp := range out.UpdateSnap.Paths {
		fmt.Printf("  flow %s -> %s\n", fp.Flow, strings.Join(fp.Path.Devices(), "-"))
	}

	if out.OK {
		log.Fatal("unexpected: the risky plan verified clean")
	}
	fmt.Println("\nHoyan rejected the plan: the latent misconfiguration on M1 was caught pre-deployment.")
	fmt.Println("(Fix: add the missing permit node on M1 — see TestFig10aFixedPlanPasses.)")
}
