// Changing ISP exits — the paper's Figure 10(b) case study.
//
// The operator moves two IPv6 prefixes from ISP1 (via border D) to ISP2
// (via border C) by raising their local preference on C — but declares the
// IPv6 prefixes with the IPv4 "ip prefix-list" command. On this vendor an
// IPv4 filter applied to IPv6 routes permits every IPv6 prefix, so ALL IPv6
// traffic moves to C and overloads the C-ISP2 link. Hoyan verifies the
// intended move but flags both the unintended churn (via the "others remain
// unchanged" intent) and the overload.
//
//	go run ./examples/ispexit
package main

import (
	"fmt"
	"log"

	"hoyan/internal/core"
	"hoyan/internal/pipeline"
	"hoyan/internal/scenario"
)

func main() {
	sc := scenario.Fig10b()
	fmt.Println(sc.Description)
	fmt.Println()

	sys := pipeline.New(sc.Net, sc.Inputs, sc.Flows, core.Options{})
	out, err := sys.Verify(sc.Plan, sc.Intents)
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range out.Reports {
		status := "SATISFIED"
		if !rep.Satisfied {
			status = "VIOLATED"
		}
		fmt.Printf("[%s] %s\n", status, rep.Intent)
		for _, v := range rep.Violations {
			fmt.Println("   ", v)
		}
	}
	if out.OK {
		log.Fatal("unexpected: the risky plan verified clean")
	}
	fmt.Println("\nHoyan rejected the plan: the ip-prefix/ipv6-prefix confusion was caught pre-deployment.")
	fmt.Println("(Fix: declare the filter with the ipv6 prefix-list command — see TestFig10bFixedPlanPasses.)")
}
