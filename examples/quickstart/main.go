// Quickstart: build a small synthetic WAN, run the full Hoyan pipeline for a
// route-attribute change, and print the verification reports.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hoyan/internal/change"
	"hoyan/internal/core"
	"hoyan/internal/gen"
	"hoyan/internal/intent"
	"hoyan/internal/pipeline"
)

func main() {
	// 1. Generate a synthetic WAN (3 regions, route reflectors, borders,
	// DC gateways, ISP peers) with its input routes and flows — the stand-in
	// for the monitoring systems' output.
	out := gen.Generate(gen.WAN(1))
	fmt.Printf("generated WAN: %d devices, %d input routes, %d flows\n",
		len(out.Net.Devices), len(out.Inputs), len(out.Flows))

	// 2. Stand up a Hoyan system over the base model. The base simulation is
	// computed once and cached (the paper's daily pre-processing).
	sys := pipeline.New(out.Net, out.Inputs, out.Flows, core.Options{})

	// 3. A change plan: tag every route that dc-0-1 advertises to its route
	// reflector with an extra community. Commands are written in the
	// device's own vendor dialect, exactly as an operator would.
	rrLoopback := out.Net.Devices["rr-0-0"].Loopback
	plan := &change.Plan{
		ID:   "quickstart-retag",
		Type: change.RouteAttrModify,
		Commands: map[string]string{"dc-0-1": fmt.Sprintf(`
ip community-list CL_R0 permit 65000:0
route-map RM_RETAG permit 10
 match community CL_R0
 set community add 65000:77
!
route-map RM_RETAG permit 20
!
router bgp
 neighbor %s route-map RM_RETAG out
!
`, rrLoopback)},
	}

	// 4. The operator's intents: the retag happened, and nothing else moved.
	intents := []intent.Intent{
		intent.RouteIntent{Spec: "forall device in {rr-0-0}: POST||peer = dc-0-1||(communities has 65000:0)||(not communities has 65000:77) |> count() = 0"},
		intent.RouteIntent{Spec: "device = rr-0-0 and peer = dc-0-0 => PRE = POST"},
		intent.LoadIntent{MaxUtilization: 0.9},
	}

	// 5. Verify: apply the plan to a copy of the base model, simulate the
	// updated network, check the intents.
	outcome, err := sys.Verify(plan, intents)
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range outcome.Reports {
		status := "SATISFIED"
		if !rep.Satisfied {
			status = "VIOLATED"
		}
		fmt.Printf("[%s] %s\n", status, rep.Intent)
		for _, v := range rep.Violations {
			fmt.Println("   ", v)
		}
	}
	if outcome.OK {
		fmt.Println("change plan verified — safe to execute")
	} else {
		fmt.Println("change plan rejected")
	}
}
