// Sharded-verification benchmarks: intra-shard what-if scenarios re-verified
// through the sharded fleet (only the touched shards re-run, boundary-sealed,
// warm-started from the base contract state) versus the whole-network
// distributed re-simulation of the same scenarios. `make bench-shard` runs
// these on the gen.WAN(2) fixture and writes the measured ratio to
// BENCH_shard.json; TestShardSpeedup pins the acceptance floor (>=2x on the
// contained-scenario sweep).
package hoyan

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"testing"

	"hoyan/internal/core"
	"hoyan/internal/dsim"
	"hoyan/internal/gen"
	"hoyan/internal/netmodel"
	"hoyan/internal/shard"
)

const (
	shardBenchShards   = 4 // gen.WAN(2) has 4 regions
	shardBenchWorkers  = 4
	shardBenchSubtasks = 8
	shardBenchSweep    = 8 // contained scenarios per timed sweep
)

// shardFixture is a running local cluster with the sharded base fixpoint
// already computed, plus the intra-shard (contained) link-failure scenarios
// the sweeps verify. The prepass runs every scenario once on both sides so
// the timed trials compare warm engines against warm engines.
type shardFixture struct {
	g       *gen.Output
	c       *dsim.LocalCluster
	v       *dsim.ShardVerifier
	snapKey string
	links   []netmodel.LinkID // contained scenarios, len <= shardBenchSweep
	seq     int               // unique task IDs across trials
}

func shardBenchFixture(tb testing.TB) *shardFixture {
	g := gen.Generate(gen.WAN(2))
	c := dsim.StartLocal(shardBenchWorkers)
	snapKey, err := c.Master.UploadSnapshot("shb", g.Net)
	if err != nil {
		tb.Fatal(err)
	}
	v := c.Master.NewShardVerifier(snapKey, g.Net, g.Inputs, shardBenchShards, 0, core.Options{})
	if _, err := v.Base("shb", shardBenchSubtasks); err != nil {
		tb.Fatal(err)
	}
	if v.BaseFellBack {
		tb.Fatal("base fixpoint fell back to the whole-network path")
	}
	f := &shardFixture{g: g, c: c, v: v, snapKey: snapKey}

	// Prepass: find contained link failures (the common intra-shard kfail
	// case) and warm both sides' per-scenario engine caches.
	for _, l := range g.Net.Topo.Links() {
		if len(f.links) >= shardBenchSweep {
			break
		}
		delta := core.Delta{LinksDown: []netmodel.LinkID{l.ID()}}
		if _, err := f.v.WhatIf(f.taskID(), delta); errors.Is(err, shard.ErrNotContained) {
			continue
		} else if err != nil {
			tb.Fatal(err)
		}
		f.links = append(f.links, l.ID())
		f.wholeScenario(tb, delta)
	}
	if len(f.links) < 2 {
		tb.Fatalf("only %d contained scenarios at WAN(2); fixture too small", len(f.links))
	}
	return f
}

func (f *shardFixture) taskID() string {
	f.seq++
	return fmt.Sprintf("shb-%d", f.seq)
}

// shardScenario re-verifies one failure through the sharded path: touched
// shards re-run sealed and warm, seams re-checked, result stitched.
func (f *shardFixture) shardScenario(tb testing.TB, delta core.Delta) {
	rt, err := f.v.WhatIf(f.taskID(), delta)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := f.c.Master.CollectRouteResults(rt); err != nil {
		tb.Fatal(err)
	}
}

// wholeScenario re-verifies the same failure as a whole-network distributed
// route simulation (every device recomputed across the fleet).
func (f *shardFixture) wholeScenario(tb testing.TB, delta core.Delta) {
	taskID := f.taskID()
	rt, err := f.c.Master.StartRouteScenario(taskID, f.snapKey, f.g.Inputs, shardBenchSubtasks,
		core.Options{}, delta.LinksDown, delta.NodesDown)
	if err != nil {
		tb.Fatal(err)
	}
	if err := f.c.Master.Wait(taskID, "route", rt.Subtasks); err != nil {
		tb.Fatal(err)
	}
	if _, err := f.c.Master.CollectRouteResults(rt); err != nil {
		tb.Fatal(err)
	}
}

func (f *shardFixture) sweep(tb testing.TB, sharded bool) {
	for _, id := range f.links {
		delta := core.Delta{LinksDown: []netmodel.LinkID{id}}
		if sharded {
			f.shardScenario(tb, delta)
		} else {
			f.wholeScenario(tb, delta)
		}
	}
}

// BenchmarkShardWhatIf times one contained scenario through the sharded path.
func BenchmarkShardWhatIf(b *testing.B) {
	f := shardBenchFixture(b)
	defer f.c.Stop()
	delta := core.Delta{LinksDown: []netmodel.LinkID{f.links[0]}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.shardScenario(b, delta)
	}
}

// BenchmarkWholeNetworkScenario times the same scenario whole-network.
func BenchmarkWholeNetworkScenario(b *testing.B) {
	f := shardBenchFixture(b)
	defer f.c.Stop()
	delta := core.Delta{LinksDown: []netmodel.LinkID{f.links[0]}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.wholeScenario(b, delta)
	}
}

// shardBenchReport is the BENCH_shard.json schema (`make bench-shard`).
type shardBenchReport struct {
	Devices   int `json:"devices"`
	Inputs    int `json:"inputs"`
	Shards    int `json:"shards"`
	Workers   int `json:"workers"`
	Scenarios int `json:"scenarios"`

	ShardedNs int64   `json:"sharded_ns"`
	WholeNs   int64   `json:"whole_ns"`
	Speedup   float64 `json:"speedup"`

	// Contract-state footprint of the base fixpoint.
	ContractRoutes int `json:"contract_routes"`
	BaseRounds     int `json:"base_rounds"`
}

// TestShardSpeedup pins the sharded verifier's acceptance floor: an
// intra-shard scenario sweep at gen.WAN(2) must verify at least 2x faster
// through the sharded fleet (touched shards only, warm contracts) than as
// whole-network distributed re-simulations. Measurements are paired per trial
// (like TestWireCompactness) so load spikes land on both sides. With
// SHARD_BENCH_JSON set it also writes the measured numbers to that path
// (used by `make bench-shard` to produce BENCH_shard.json).
func TestShardSpeedup(t *testing.T) {
	f := shardBenchFixture(t)
	defer f.c.Stop()
	baseRounds := f.v.LastRounds

	const trials, iters = 3, 1
	shardedNs, wholeNs := measurePair(trials, iters,
		func() { f.sweep(t, true) },
		func() { f.sweep(t, false) })

	rep := shardBenchReport{
		Devices:        len(f.g.Net.Devices),
		Inputs:         len(f.g.Inputs),
		Shards:         shardBenchShards,
		Workers:        shardBenchWorkers,
		Scenarios:      len(f.links),
		ShardedNs:      shardedNs,
		WholeNs:        wholeNs,
		Speedup:        float64(wholeNs) / float64(shardedNs),
		ContractRoutes: f.v.ContractRoutes(),
		BaseRounds:     baseRounds,
	}
	t.Logf("%d devices / %d scenarios: sharded %.2fms vs whole-network %.2fms (%.2fx); %d contract routes, %d base rounds",
		rep.Devices, rep.Scenarios, float64(rep.ShardedNs)/1e6, float64(rep.WholeNs)/1e6,
		rep.Speedup, rep.ContractRoutes, rep.BaseRounds)

	// The race detector serializes the fleet's hot paths unevenly, so the
	// ratio floor is enforced only uninstrumented (`make bench-shard` and the
	// plain `go test` tier).
	if rep.Speedup < 2 && !raceEnabled {
		t.Errorf("sharded scenario sweep only %.2fx faster than whole-network, want >=2x", rep.Speedup)
	}

	if path := os.Getenv("SHARD_BENCH_JSON"); path != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
