// Durable-substrate benchmarks: the distributed pipeline over WAL-backed
// disk substrates versus the in-memory ones. `make bench-durable` runs
// TestDurableOverhead and writes the measured wall times to
// BENCH_durable.json; the acceptance floor is disk-backed at fsync=interval
// within 1.25x of the in-memory wall time.
package hoyan

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"hoyan/internal/core"
	"hoyan/internal/durable"
	"hoyan/internal/gen"
	"hoyan/internal/pipeline"
)

// durableSystem builds a distributed pipeline system over the small WAN
// fixture; dataDir empty keeps the in-memory substrates.
func durableSystem(out *gen.Output, dataDir string, fsync durable.Policy) *pipeline.System {
	sys := pipeline.New(out.Net, out.Inputs, out.Flows, core.Options{})
	sys.Workers = 3
	sys.RouteSubtasks = 6
	sys.TrafficSubtasks = 6
	sys.DataDir = dataDir
	sys.Fsync = fsync
	return sys
}

// durableBenchReport is the BENCH_durable.json schema (`make bench-durable`).
type durableBenchReport struct {
	Workers         int    `json:"workers"`
	RouteSubtasks   int    `json:"route_subtasks"`
	TrafficSubtasks int    `json:"traffic_subtasks"`
	Fsync           string `json:"fsync"`

	MemoryNs       int64 `json:"memory_ns"`
	DiskIntervalNs int64 `json:"disk_interval_ns"`
	DiskAlwaysNs   int64 `json:"disk_always_ns"`
	// Overhead is disk-interval wall time over in-memory wall time; the
	// acceptance floor is <= 1.25.
	Overhead float64 `json:"overhead"`
	// DataDirBytes is the on-disk footprint one disk-backed run leaves
	// behind (WALs after compaction plus the object files).
	DataDirBytes int64 `json:"data_dir_bytes"`
}

// TestDurableOverhead measures one full distributed route+traffic run on
// in-memory substrates against the same run on WAL-backed disk substrates
// and pins the fsync=interval overhead floor. With DURABLE_BENCH_JSON set it
// also writes the measured numbers to that path.
func TestDurableOverhead(t *testing.T) {
	out := gen.Generate(gen.WAN(1))
	dataDir := t.TempDir()
	memSys := durableSystem(out, "", durable.SyncInterval)
	diskSys := durableSystem(out, dataDir, durable.SyncInterval)

	runSim := func(sys *pipeline.System, taskID string) {
		if _, err := sys.Simulate(taskID); err != nil {
			t.Fatal(err)
		}
	}
	// Warm both paths once: engine caches, page cache, directory creation.
	runSim(memSys, "warm-mem")
	runSim(diskSys, "warm-disk")

	run := 0
	diskNs, memNs := measurePair(3, 1,
		func() { run++; runSim(diskSys, fmt.Sprintf("disk-%d", run)) },
		func() { runSim(memSys, fmt.Sprintf("mem-%d", run)) })

	alwaysDir := t.TempDir()
	alwaysSys := durableSystem(out, alwaysDir, durable.SyncAlways)
	alwaysNs := int64(timeIters(1, func() { runSim(alwaysSys, "always-0") }))

	rep := durableBenchReport{
		Workers:         diskSys.Workers,
		RouteSubtasks:   diskSys.RouteSubtasks,
		TrafficSubtasks: diskSys.TrafficSubtasks,
		Fsync:           durable.SyncInterval.String(),
		MemoryNs:        memNs,
		DiskIntervalNs:  diskNs,
		DiskAlwaysNs:    alwaysNs,
		Overhead:        float64(diskNs) / float64(memNs),
		DataDirBytes:    dirBytes(t, filepath.Join(dataDir, fmt.Sprintf("disk-%d", run))),
	}
	t.Logf("memory %v, disk(interval) %v (%.2fx), disk(always) %v, %d B on disk per run",
		rep.MemoryNs, rep.DiskIntervalNs, rep.Overhead, rep.DiskAlwaysNs, rep.DataDirBytes)

	if rep.Overhead > 1.25 && !raceEnabled {
		t.Errorf("disk-backed run %.2fx slower than in-memory, want <= 1.25x", rep.Overhead)
	}

	if path := os.Getenv("DURABLE_BENCH_JSON"); path != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

// BenchmarkDurablePipeline is the raw sweep behind TestDurableOverhead: one
// full distributed run per iteration, per substrate backing.
func BenchmarkDurablePipeline(b *testing.B) {
	out := gen.Generate(gen.WAN(1))
	cases := []struct {
		name  string
		disk  bool
		fsync durable.Policy
	}{
		{"memory", false, durable.SyncInterval},
		{"disk-interval", true, durable.SyncInterval},
		{"disk-always", true, durable.SyncAlways},
		{"disk-never", true, durable.SyncNever},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			dataDir := ""
			if c.disk {
				dataDir = b.TempDir()
			}
			sys := durableSystem(out, dataDir, c.fsync)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Simulate(fmt.Sprintf("bench-%d", i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func dirBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	err := filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			fi, err := d.Info()
			if err != nil {
				return err
			}
			total += fi.Size()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}
