// Wire-codec benchmarks: the compact binary format (internal/wire) versus
// the legacy JSON encoding, on the gen.WAN(2) fixture the rest of the bench
// harness uses. `make bench-wire` runs these and writes the measured sizes
// and decode speedups to BENCH_wire.json; TestWireCompactness pins the
// acceptance floors (>=3x smaller blobs, >=2x faster decode than JSON).
package hoyan

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"hoyan/internal/core"
	"hoyan/internal/netmodel"
)

func wireFixtures(tb testing.TB) (*core.Snapshot, []netmodel.Route) {
	wan, _, _, ribs := fixtures()
	snap := core.TakeSnapshot(wan.Net)
	rows := ribs.GlobalRIB().Rows()
	if len(rows) == 0 {
		tb.Fatal("fixture produced no RIB rows")
	}
	return snap, rows
}

func wireRoutesBlob(tb testing.TB, rows []netmodel.Route) []byte {
	var buf bytes.Buffer
	if err := core.EncodeRoutes(&buf, rows); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func wireSnapshotBlob(tb testing.TB, snap *core.Snapshot) []byte {
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func jsonBlob(tb testing.TB, v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// BenchmarkWireRoutes compares encode/decode of the fixture's global RIB
// (every route row the distributed framework ships between workers) in the
// binary wire format and the legacy JSON encoding. The decode/json case goes
// through the same core.DecodeRoutes entry point — it exercises the JSON
// fallback path a mixed-version cluster hits.
func BenchmarkWireRoutes(b *testing.B) {
	_, rows := wireFixtures(b)
	wireData := wireRoutesBlob(b, rows)
	jsonData := jsonBlob(b, rows)
	b.ReportMetric(float64(len(rows)), "rows")

	b.Run("encode/wire", func(b *testing.B) {
		b.SetBytes(int64(len(wireData)))
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := core.EncodeRoutes(&buf, rows); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode/json", func(b *testing.B) {
		b.SetBytes(int64(len(jsonData)))
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(rows); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode/wire", func(b *testing.B) {
		b.SetBytes(int64(len(wireData)))
		for i := 0; i < b.N; i++ {
			if _, err := core.DecodeRoutes(bytes.NewReader(wireData)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode/json", func(b *testing.B) {
		b.SetBytes(int64(len(jsonData)))
		for i := 0; i < b.N; i++ {
			if _, err := core.DecodeRoutes(bytes.NewReader(jsonData)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWireSnapshot compares encode/decode of the base-network snapshot
// (configuration text plus topology — the largest single blob a task
// uploads) in the compressed binary wire format and legacy JSON.
func BenchmarkWireSnapshot(b *testing.B) {
	snap, _ := wireFixtures(b)
	wireData := wireSnapshotBlob(b, snap)
	jsonData := jsonBlob(b, snap)
	b.ReportMetric(float64(len(snap.Configs)), "devices")

	b.Run("encode/wire", func(b *testing.B) {
		b.SetBytes(int64(len(wireData)))
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := snap.Encode(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode/json", func(b *testing.B) {
		b.SetBytes(int64(len(jsonData)))
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(snap); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode/wire", func(b *testing.B) {
		b.SetBytes(int64(len(wireData)))
		for i := 0; i < b.N; i++ {
			if _, err := core.DecodeSnapshot(bytes.NewReader(wireData)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode/json", func(b *testing.B) {
		b.SetBytes(int64(len(jsonData)))
		for i := 0; i < b.N; i++ {
			if _, err := core.DecodeSnapshot(bytes.NewReader(jsonData)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// wireBenchReport is the BENCH_wire.json schema (`make bench-wire`).
type wireBenchReport struct {
	RouteRows           int     `json:"route_rows"`
	RoutesWireBytes     int     `json:"routes_wire_bytes"`
	RoutesJSONBytes     int     `json:"routes_json_bytes"`
	RoutesSizeRatio     float64 `json:"routes_size_ratio"`
	RoutesDecodeWireNs  int64   `json:"routes_decode_wire_ns"`
	RoutesDecodeJSONNs  int64   `json:"routes_decode_json_ns"`
	RoutesDecodeSpeedup float64 `json:"routes_decode_speedup"`

	SnapshotDevices       int     `json:"snapshot_devices"`
	SnapshotWireBytes     int     `json:"snapshot_wire_bytes"`
	SnapshotJSONBytes     int     `json:"snapshot_json_bytes"`
	SnapshotSizeRatio     float64 `json:"snapshot_size_ratio"`
	SnapshotDecodeWireNs  int64   `json:"snapshot_decode_wire_ns"`
	SnapshotDecodeJSONNs  int64   `json:"snapshot_decode_json_ns"`
	SnapshotDecodeSpeedup float64 `json:"snapshot_decode_speedup"`
}

func timeIters(iters int, f func()) time.Duration {
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	return time.Since(start) / time.Duration(iters)
}

// measurePair times wireF and jsonF back to back `trials` times and returns
// the per-iteration durations of the trial with the best JSON/wire ratio.
// Pairing the measurements inside each trial keeps the ratio meaningful on a
// loaded host: a background spike lands on both sides of one trial rather
// than on one phase of a split measurement, and one quiet trial suffices.
func measurePair(trials, iters int, wireF, jsonF func()) (wireNs, jsonNs int64) {
	for t := 0; t < trials; t++ {
		w := int64(timeIters(iters, wireF))
		j := int64(timeIters(iters, jsonF))
		if t == 0 || float64(j)*float64(wireNs) > float64(jsonNs)*float64(w) {
			wireNs, jsonNs = w, j
		}
	}
	return
}

// TestWireCompactness pins the wire codec's acceptance floors on the
// gen.WAN(2) fixture: encoded route and snapshot blobs at least 3x smaller
// than JSON, and decode at least 2x faster than the JSON fallback. With
// WIRE_BENCH_JSON set it also writes the measured numbers to that path
// (used by `make bench-wire` to produce BENCH_wire.json).
func TestWireCompactness(t *testing.T) {
	snap, rows := wireFixtures(t)
	routesWire := wireRoutesBlob(t, rows)
	routesJSON := jsonBlob(t, rows)
	snapWire := wireSnapshotBlob(t, snap)
	snapJSON := jsonBlob(t, snap)

	// The route blobs are large (milliseconds per decode); the snapshot is a
	// few KiB, so it needs many more iterations per trial for a stable floor.
	const trials, iters, snapIters = 5, 5, 200
	rep := wireBenchReport{
		RouteRows:         len(rows),
		RoutesWireBytes:   len(routesWire),
		RoutesJSONBytes:   len(routesJSON),
		RoutesSizeRatio:   float64(len(routesJSON)) / float64(len(routesWire)),
		SnapshotDevices:   len(snap.Configs),
		SnapshotWireBytes: len(snapWire),
		SnapshotJSONBytes: len(snapJSON),
		SnapshotSizeRatio: float64(len(snapJSON)) / float64(len(snapWire)),
	}
	rep.RoutesDecodeWireNs, rep.RoutesDecodeJSONNs = measurePair(trials, iters,
		func() {
			if _, err := core.DecodeRoutes(bytes.NewReader(routesWire)); err != nil {
				t.Fatal(err)
			}
		},
		func() {
			if _, err := core.DecodeRoutes(bytes.NewReader(routesJSON)); err != nil {
				t.Fatal(err)
			}
		})
	rep.SnapshotDecodeWireNs, rep.SnapshotDecodeJSONNs = measurePair(trials, snapIters,
		func() {
			if _, err := core.DecodeSnapshot(bytes.NewReader(snapWire)); err != nil {
				t.Fatal(err)
			}
		},
		func() {
			if _, err := core.DecodeSnapshot(bytes.NewReader(snapJSON)); err != nil {
				t.Fatal(err)
			}
		})
	rep.RoutesDecodeSpeedup = float64(rep.RoutesDecodeJSONNs) / float64(rep.RoutesDecodeWireNs)
	rep.SnapshotDecodeSpeedup = float64(rep.SnapshotDecodeJSONNs) / float64(rep.SnapshotDecodeWireNs)

	t.Logf("routes: %d rows, wire %d B vs json %d B (%.1fx), decode %.2fx faster",
		rep.RouteRows, rep.RoutesWireBytes, rep.RoutesJSONBytes, rep.RoutesSizeRatio, rep.RoutesDecodeSpeedup)
	t.Logf("snapshot: %d devices, wire %d B vs json %d B (%.1fx), decode %.2fx faster",
		rep.SnapshotDevices, rep.SnapshotWireBytes, rep.SnapshotJSONBytes, rep.SnapshotSizeRatio, rep.SnapshotDecodeSpeedup)

	if rep.RoutesSizeRatio < 3 {
		t.Errorf("route blob only %.2fx smaller than JSON, want >=3x", rep.RoutesSizeRatio)
	}
	if rep.SnapshotSizeRatio < 3 {
		t.Errorf("snapshot blob only %.2fx smaller than JSON, want >=3x", rep.SnapshotSizeRatio)
	}
	if rep.RoutesDecodeSpeedup < 2 {
		t.Errorf("route decode only %.2fx faster than JSON, want >=2x", rep.RoutesDecodeSpeedup)
	}
	if rep.SnapshotDecodeSpeedup < 2 {
		t.Errorf("snapshot decode only %.2fx faster than JSON, want >=2x", rep.SnapshotDecodeSpeedup)
	}

	if path := os.Getenv("WIRE_BENCH_JSON"); path != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
